"""Network chaos: the TCP proxy and the self-healing serve client.

Three layers, cheapest first:

* :class:`ChaosProxy` mechanics against a plain echo upstream — bytes
  pass through a no-op plan untouched, each fault kind actually
  mangles/cuts/drops, and the seeded per-connection RNG makes runs
  reproducible;
* :class:`ServeClient` healing against a *scripted* HTTP server whose
  failures are exact (refuse, 503-then-200, truncated body, torn
  event stream) — deterministic versions of what the proxy does
  statistically;
* one end-to-end: a real campaign driven through a truncating proxy,
  with the results byte-identical to the chaos-free path.
"""

import json
import socket
import threading

import pytest

from repro.errors import ConfigError, ServeError
from repro.faults.netchaos import NET_FAULT_KINDS, ChaosProxy, NetChaosPlan
from repro.serve.client import ServeClient
from repro.serve.server import CampaignServer

_SMALL = {"apps": ["fmm"], "configs": ["baseline", "thrifty"],
          "threads": 16}


class TestNetChaosPlan:
    def test_default_is_noop(self):
        plan = NetChaosPlan()
        assert plan.is_noop
        assert "seed=0" in plan.describe()

    def test_active_plan_describes_its_faults(self):
        plan = NetChaosPlan(seed=4, truncate_probability=0.5)
        assert not plan.is_noop
        assert "truncate_probability=0.5" in plan.describe()

    @pytest.mark.parametrize("field_name", (
        "drop_probability", "delay_probability",
        "truncate_probability", "corrupt_probability",
    ))
    def test_probability_validation(self, field_name):
        with pytest.raises(ConfigError, match=field_name):
            NetChaosPlan(**{field_name: 1.1})

    def test_delay_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="delay_s"):
            NetChaosPlan(delay_s=-0.1)

    def test_fault_kinds_are_documented(self):
        assert set(NET_FAULT_KINDS) == {
            "delay", "truncate", "corrupt", "drop",
        }


class _EchoUpstream:
    """Accepts one connection at a time and echoes what it reads."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self._listener.settimeout(0.05)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._echo, args=(conn,), daemon=True,
            ).start()

    def _echo(self, conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    break
                conn.sendall(data)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=2.0)


@pytest.fixture
def echo():
    upstream = _EchoUpstream()
    yield upstream
    upstream.close()


def _round_trip(port, payload, timeout=5.0):
    """Send ``payload`` through the proxy; return what comes back.

    A proxy-injected drop may land at any point in the exchange —
    before the send finishes, between send and shutdown, or mid-read.
    Whatever was received before the cut is the answer; a reset
    connection is the empty reply, not an error.
    """
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    received = b""
    try:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            received += chunk
    except OSError:
        pass
    finally:
        sock.close()
    return received


class TestChaosProxy:
    def test_noop_plan_is_a_transparent_forwarder(self, echo):
        payload = b"thrifty barrier" * 100
        with ChaosProxy("127.0.0.1", echo.port) as proxy:
            assert _round_trip(proxy.port, payload) == payload
            assert proxy.connections == 1
            assert proxy.faults == 0

    def test_drop_closes_the_connection_immediately(self, echo):
        plan = NetChaosPlan(drop_probability=1.0)
        with ChaosProxy("127.0.0.1", echo.port, plan) as proxy:
            assert _round_trip(proxy.port, b"hello") == b""
            assert proxy.fault_counts["drop"] == 1

    def test_truncate_returns_a_strict_prefix(self, echo):
        plan = NetChaosPlan(seed=1, truncate_probability=1.0)
        payload = b"x" * 4096
        with ChaosProxy("127.0.0.1", echo.port, plan) as proxy:
            received = _round_trip(proxy.port, payload)
            assert len(received) < len(payload)
            assert payload.startswith(received)
            assert proxy.fault_counts["truncate"] >= 1

    def test_corrupt_flips_exactly_one_byte_per_fault(self, echo):
        plan = NetChaosPlan(seed=2, corrupt_probability=1.0)
        payload = b"\x00" * 512
        with ChaosProxy("127.0.0.1", echo.port, plan) as proxy:
            received = _round_trip(proxy.port, payload)
            assert len(received) == len(payload)
            flipped = sum(1 for byte in received if byte == 0xFF)
            assert flipped == proxy.fault_counts["corrupt"] >= 1
            assert all(byte in (0, 0xFF) for byte in received)

    def test_same_seed_same_fault_decisions(self, echo):
        plan = NetChaosPlan(seed=3, truncate_probability=0.5)
        outcomes = []
        for _ in range(2):
            with ChaosProxy("127.0.0.1", echo.port, plan) as proxy:
                lengths = [
                    len(_round_trip(proxy.port, b"y" * 2048))
                    for _ in range(6)
                ]
                outcomes.append((lengths, dict(proxy.fault_counts)))
        assert outcomes[0] == outcomes[1]

    def test_double_start_is_refused(self, echo):
        proxy = ChaosProxy("127.0.0.1", echo.port).start()
        try:
            with pytest.raises(ConfigError, match="already started"):
                proxy.start()
        finally:
            proxy.stop()


class _ScriptedHttp:
    """A one-thread HTTP server answering from a queue of scripts.

    Each entry handles one accepted connection:

    * ``("close", None)`` — accept, then slam the connection shut;
    * ``("raw", bytes)`` — send exactly these bytes, then close;
    * ``("json", payload)`` — a complete 200 JSON response.

    When the queue runs dry the last entry repeats. Deterministic by
    construction: connection N gets script N, whatever the timing.
    """

    def __init__(self, scripts):
        self.scripts = list(scripts)
        self.served = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @staticmethod
    def response(payload, status=200):
        body = (json.dumps(payload) + "\n").encode("utf-8")
        head = (
            "HTTP/1.1 {} X\r\nContent-Type: application/json\r\n"
            "Connection: close\r\n\r\n".format(status)
        ).encode("ascii")
        return head + body

    def _serve(self):
        self._listener.settimeout(0.05)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            index = min(self.served, len(self.scripts) - 1)
            kind, value = self.scripts[index]
            self.served += 1
            try:
                conn.settimeout(2.0)
                # Read the request head so the client is not cut off
                # mid-send (we answer regardless of its content).
                try:
                    head = b""
                    while b"\r\n\r\n" not in head:
                        chunk = conn.recv(65536)
                        if not chunk:
                            break
                        head += chunk
                except OSError:
                    pass
                if kind == "raw":
                    conn.sendall(value)
                elif kind == "json":
                    conn.sendall(self.response(value))
                # "close": nothing — just drop it.
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=2.0)


def _client(port, retries=2):
    return ServeClient(
        host="127.0.0.1", port=port, timeout=2.0, retries=retries,
        backoff_base_s=0.01, backoff_cap_s=0.05,
    )


def _scripted(scripts):
    server = _ScriptedHttp(scripts)
    return server, _client(server.port)


class TestClientRetries:
    def test_get_retries_through_a_slammed_connection(self):
        server, client = _scripted([
            ("close", None),
            ("json", {"state": "done"}),
        ])
        try:
            assert client.health() == {"state": "done"}
            assert server.served == 2
        finally:
            server.close()

    def test_get_retries_through_a_503(self):
        server, client = _scripted([
            ("raw", _ScriptedHttp.response({"error": "shed"}, status=503)),
            ("json", {"ok": True}),
        ])
        try:
            assert client.health() == {"ok": True}
            assert server.served == 2
        finally:
            server.close()

    def test_get_retries_through_a_truncated_body(self):
        whole = _ScriptedHttp.response({"answer": 42})
        server, client = _scripted([
            ("raw", whole[:-8]),  # cut mid-JSON, headers intact
            ("json", {"answer": 42}),
        ])
        try:
            assert client.health() == {"answer": 42}
            assert server.served == 2
        finally:
            server.close()

    def test_retries_are_bounded(self):
        server, client = _scripted([("close", None)])
        try:
            with pytest.raises(ServeError, match="cannot reach"):
                client.health()
            assert server.served == client.retries + 1
        finally:
            server.close()

    def test_post_is_never_retried(self):
        server, client = _scripted([
            ("close", None),
            ("json", {"ok": True}),
        ])
        try:
            with pytest.raises(ServeError, match="cannot reach"):
                client.submit({"spec": 1})
            assert server.served == 1, "a failed POST must not be resent"
        finally:
            server.close()

    def test_definitive_errors_are_not_retried(self):
        server, client = _scripted([
            ("raw", _ScriptedHttp.response({"error": "no such run"},
                                           status=404)),
            ("json", {"ok": True}),
        ])
        try:
            with pytest.raises(ServeError, match="no such run") as excinfo:
                client.status("nope")
            assert excinfo.value.status == 404
            assert server.served == 1
        finally:
            server.close()


def _ndjson(head_status, events, tear=b""):
    head = (
        "HTTP/1.1 {} X\r\nContent-Type: application/x-ndjson\r\n"
        "Connection: close\r\n\r\n".format(head_status)
    ).encode("ascii")
    body = b"".join(
        (json.dumps(event) + "\n").encode("utf-8") for event in events
    )
    return head + body + tear


class TestEventStreamReconnect:
    _EVENTS = [{"event": "progress", "completed": n} for n in (1, 2, 3)]

    def test_reconnects_after_a_torn_line_without_duplicates(self):
        torn = _ndjson(200, self._EVENTS[:1], tear=b'{"event": "prog')
        server, client = _scripted([
            ("raw", torn),
            ("raw", _ndjson(200, self._EVENTS)),       # backlog replay
            ("json", {"state": "done"}),               # terminal check
        ])
        try:
            assert list(client.events("r")) == self._EVENTS
            assert server.served == 3
        finally:
            server.close()

    def test_clean_close_before_terminal_reconnects(self):
        server, client = _scripted([
            ("raw", _ndjson(200, self._EVENTS[:2])),   # cut on a boundary
            ("json", {"state": "running"}),            # not done yet...
            ("raw", _ndjson(200, self._EVENTS)),       # ...so reconnect
            ("json", {"state": "done"}),
        ])
        try:
            assert list(client.events("r")) == self._EVENTS
            assert server.served == 4
        finally:
            server.close()

    def test_reconnects_are_bounded(self):
        torn = _ndjson(200, [], tear=b"{torn")
        server, client = _scripted([("raw", torn)])
        try:
            with pytest.raises(ServeError, match="did not recover"):
                list(client.events("r"))
            assert server.served == client.retries + 1
        finally:
            server.close()


def _double(cell):
    return cell * 2


class TestEndToEndThroughChaos:
    def test_campaign_results_survive_a_truncating_proxy(self, tmp_path):
        server = CampaignServer(
            port=0, task=_double, pool_size=1,
            cache=str(tmp_path / "cache"),
            journal_root=str(tmp_path / "runs"),
        )
        thread = threading.Thread(
            target=lambda: server.run(banner=False), daemon=True,
        )
        thread.start()
        deadline = 50
        while not server.port and deadline:
            threading.Event().wait(0.1)
            deadline -= 1
        assert server.port, "campaign server failed to start"

        direct = _client(server.port)
        try:
            run_id = direct.submit(_SMALL)["run_id"]
            direct.wait(run_id, timeout=60.0, poll_s=0.05)
            reference = direct.results(run_id)

            # Roughly every third response chunk is cut mid-flight; the
            # client has enough retries to ride through a long streak.
            plan = NetChaosPlan(seed=11, truncate_probability=0.3)
            with ChaosProxy("127.0.0.1", server.port, plan) as proxy:
                hostile = _client(proxy.port, retries=10)
                status = hostile.status(run_id)
                assert status["state"] == "done"
                assert hostile.results(run_id) == reference
                events = list(hostile.events(run_id, timeout=10.0))
                assert events, "the stream must deliver through chaos"
                # Fault rolls happen per forwarded chunk, and TCP
                # chunking varies with timing — a lucky segmentation
                # can ride the whole exchange through unscathed. Keep
                # the healed client talking until the plan fires, so
                # the guard below can't flake on chunking luck.
                for _ in range(50):
                    if proxy.faults:
                        break
                    assert hostile.status(run_id)["state"] == "done"
                assert proxy.faults > 0, \
                    "the chaos plan never fired; this test proved nothing"
        finally:
            try:
                direct.shutdown()
            except ServeError:
                pass
            thread.join(timeout=10.0)
