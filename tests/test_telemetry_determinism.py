"""Telemetry determinism across the parallel engine and result cache.

The headline contract of the subsystem: identical seeds produce
byte-identical Chrome-trace exports whether the cells run in-process,
across fork workers, or come back from the on-disk result cache.
"""

import pytest

from repro.experiments.parallel import (
    ExperimentCell,
    ExperimentEngine,
    _fork_context,
    record_engine_metrics,
)
from repro.telemetry import MetricsRegistry, TelemetrySnapshot
from repro.telemetry.export import chrome_trace_json

APPS = ("fmm", "radix")
THREADS = 8

needs_fork = pytest.mark.skipif(
    _fork_context() is None, reason="platform cannot fork"
)


def _cells():
    return [
        ExperimentCell.make(
            app, "thrifty", threads=THREADS, seed=1, telemetry=True
        )
        for app in APPS
    ]


def _traces(results):
    return [chrome_trace_json(result.telemetry.events) for result in results]


class TestWorkerCountInvariance:
    @needs_fork
    def test_workers_1_vs_4_byte_identical_traces(self):
        serial = ExperimentEngine(workers=1, cache=None).run_cells(_cells())
        parallel = ExperimentEngine(workers=4, cache=None).run_cells(_cells())
        assert _traces(serial) == _traces(parallel)

    @needs_fork
    def test_workers_1_vs_4_identical_metric_snapshots(self):
        serial = ExperimentEngine(workers=1, cache=None).run_cells(_cells())
        parallel = ExperimentEngine(workers=4, cache=None).run_cells(_cells())
        for a, b in zip(serial, parallel):
            assert a.telemetry.metrics == b.telemetry.metrics
            assert a.identical(b)


class TestCacheRoundTrip:
    def test_snapshot_survives_the_cache(self, tmp_path):
        cells = _cells()
        cold_engine = ExperimentEngine(workers=1, cache=str(tmp_path))
        cold = cold_engine.run_cells(cells)
        assert cold_engine.cache.stats()["stores"] == len(cells)

        warm_engine = ExperimentEngine(workers=1, cache=str(tmp_path))
        warm = warm_engine.run_cells(cells)
        assert warm_engine.cache.stats()["hits"] == len(cells)
        assert warm_engine.stats.executed == 0  # zero re-simulations

        for fresh, cached in zip(cold, warm):
            assert isinstance(cached.telemetry, TelemetrySnapshot)
            assert cached.telemetry == fresh.telemetry
        assert _traces(cold) == _traces(warm)

    def test_traced_and_plain_cells_do_not_collide(self, tmp_path):
        traced = ExperimentCell.make(
            "fmm", "thrifty", threads=THREADS, seed=1, telemetry=True
        )
        plain = ExperimentCell.make(
            "fmm", "thrifty", threads=THREADS, seed=1
        )
        assert traced.key() != plain.key()

        engine = ExperimentEngine(workers=1, cache=str(tmp_path))
        engine.run_cells([traced])
        (result,) = engine.run_cells([plain])
        assert result.telemetry is None  # the traced entry was not reused

    def test_engine_metrics_bridge(self, tmp_path):
        cells = _cells()
        engine = ExperimentEngine(workers=1, cache=str(tmp_path))
        engine.run_cells(cells)
        engine.run_cells(cells)
        registry = MetricsRegistry()
        record_engine_metrics(registry, engine)
        snapshot = registry.snapshot()["counters"]
        assert snapshot["engine.submitted"] == 2 * len(cells)
        assert snapshot["engine.executed"] == len(cells)
        assert snapshot["engine.cache_hits"] == len(cells)
        assert snapshot["cache.hits"] == len(cells)
        assert snapshot["cache.stores"] == len(cells)
