"""Tests for the optional link-contention model."""

import pytest

from repro.config import MachineConfig, NetworkConfig
from repro.interconnect import Hypercube, Network
from repro.machine import System
from repro.predict import TimingDomain
from repro.sim import Simulator
from repro.sync import ConventionalBarrier

from tests.conftest import run_phases, staggered_schedules


def contended_network(n_nodes=8):
    sim = Simulator()
    config = NetworkConfig(model_contention=True)
    return sim, Network(sim, Hypercube(n_nodes), config)


class TestLinkContention:
    def test_single_message_matches_uncontended(self):
        sim, net = contended_network()
        event = net.transfer(0, 3, size_bytes=16)
        sim.run()
        assert sim.now == net.latency_ns(0, 3, size_bytes=16)
        assert event.triggered

    def test_second_message_queues_on_shared_link(self):
        sim, net = contended_network()
        # Both messages cross link (0 -> 1) first (e-cube order).
        first = net.transfer(0, 1, size_bytes=80)   # 5 flits: 20 ns hold
        arrivals = []
        second = net.transfer(0, 1, size_bytes=16)
        first.add_callback(lambda ev: arrivals.append(("first", sim.now)))
        second.add_callback(lambda ev: arrivals.append(("second", sim.now)))
        sim.run()
        base = net.latency_ns(0, 1, size_bytes=16)
        second_arrival = dict(arrivals)["second"]
        assert second_arrival > base  # queued behind the first worm

    def test_disjoint_paths_do_not_interact(self):
        sim, net = contended_network()
        net.transfer(0, 1, size_bytes=512)
        event = net.transfer(2, 3, size_bytes=16)  # link (2 -> 3)
        sim.run()
        # Second message unaffected: links disjoint.
        assert event.triggered
        assert sim.now >= net.latency_ns(0, 1, size_bytes=512)

    def test_fanout_serializes_at_source_links(self):
        sim, net = contended_network()
        # 3 messages from node 0 to neighbors 1, 2, 4: different first
        # links, so they go out in parallel...
        for dst in (1, 2, 4):
            net.transfer(0, dst, size_bytes=16)
        sim.run()
        parallel_time = sim.now
        # ... but 3 messages to the same destination share links.
        sim2, net2 = contended_network()
        for _ in range(3):
            net2.transfer(0, 1, size_bytes=16)
        sim2.run()
        assert sim2.now > parallel_time - 1  # queuing visible

    def test_contention_grows_barrier_release_fanout(self):
        def run_with(contention):
            network = NetworkConfig(model_contention=contention)
            system = System(MachineConfig(n_nodes=8, network=network))
            domain = TimingDomain(system, 8)
            barrier = ConventionalBarrier(system, domain, 8, pc="c")
            run_phases(
                system, barrier, staggered_schedules(8, 2, 10_000, 5_000)
            )
            return system.execution_time_ns

        uncontended = run_with(False)
        contended = run_with(True)
        # The INV fan-out and serialized check-ins share links; modeled
        # contention can only lengthen the run.
        assert contended >= uncontended

    def test_invalid_size_still_rejected(self):
        sim, net = contended_network()
        with pytest.raises(Exception):
            net.transfer(0, 1, size_bytes=0)
