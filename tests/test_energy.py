"""Unit tests for the energy subsystem (repro.energy)."""

import pytest

from repro.config import DEFAULT_SLEEP_STATES, SLEEP1_HALT, SLEEP2, SLEEP3
from repro.energy import (
    ActivityProfile,
    Category,
    EnergyAccount,
    WattchModel,
    calibrate_tdp_max,
    ramp_energy,
    select_sleep_state,
)
from repro.energy.states import sleep_interval_energy
from repro.errors import ConfigError, SimulationError


class TestWattchModel:
    def test_power_is_positive_and_bounded_by_worst_case(self):
        model = WattchModel()
        typical = model.power(ActivityProfile.typical())
        worst = model.power(ActivityProfile.worst_case())
        assert 0 < typical < worst

    def test_power_scales_linearly_with_frequency(self):
        slow = WattchModel(cpu_freq_mhz=500)
        fast = WattchModel(cpu_freq_mhz=1000)
        profile = ActivityProfile.typical()
        assert fast.power(profile) == pytest.approx(2 * slow.power(profile))

    def test_power_scales_quadratically_with_voltage(self):
        low = WattchModel(supply_voltage=1.0)
        high = WattchModel(supply_voltage=2.0)
        profile = ActivityProfile.typical()
        assert high.power(profile) == pytest.approx(4 * low.power(profile))

    def test_idle_residual_keeps_floor_power(self):
        model = WattchModel()
        silent = ActivityProfile(
            **{name: 0.0 for name in ActivityProfile.typical().as_dict()}
        )
        worst = model.power(ActivityProfile.worst_case())
        assert model.power(silent) == pytest.approx(0.1 * worst, rel=1e-6)

    def test_spinloop_power_near_85_percent_of_typical(self):
        # Paper Section 4.3: spinloop draws ~85% of regular computation.
        model = WattchModel()
        ratio = model.power(ActivityProfile.spinloop()) / model.power(
            ActivityProfile.typical()
        )
        assert 0.75 <= ratio <= 0.95

    def test_breakdown_sums_to_total(self):
        model = WattchModel()
        profile = ActivityProfile.typical()
        assert sum(model.breakdown(profile).values()) == pytest.approx(
            model.power(profile)
        )

    def test_clock_tree_dominates_breakdown(self):
        model = WattchModel()
        breakdown = model.breakdown(ActivityProfile.worst_case())
        assert breakdown["clock_tree"] == max(breakdown.values())

    def test_activity_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            ActivityProfile(int_alus=1.5)

    def test_invalid_model_parameters_rejected(self):
        with pytest.raises(ConfigError):
            WattchModel(cpu_freq_mhz=0)
        with pytest.raises(ConfigError):
            WattchModel(supply_voltage=-1)

    def test_unknown_unit_rejected(self):
        with pytest.raises(ConfigError):
            WattchModel().unit_power("flux_capacitor", 0.5)


class TestTdpCalibration:
    def test_tdp_exceeds_typical_power(self):
        model = WattchModel()
        result = calibrate_tdp_max(model)
        assert result.tdp_max_watts > model.power(ActivityProfile.typical())

    def test_tdp_at_most_ceiling(self):
        model = WattchModel()
        result = calibrate_tdp_max(model)
        assert result.tdp_max_watts <= model.power(
            ActivityProfile.worst_case()
        )

    def test_saturating_mix_wins(self):
        result = calibrate_tdp_max()
        assert result.best_mix["int"] > 0
        assert result.best_mix["fp"] > 0
        assert result.best_mix["mem"] > 0

    def test_default_model_used_when_omitted(self):
        assert calibrate_tdp_max().tdp_max_watts > 0

    def test_sleep_state_powers_follow_table3_ratios(self):
        tdp = calibrate_tdp_max().tdp_max_watts
        p1 = SLEEP1_HALT.residency_power(tdp)
        p2 = SLEEP2.residency_power(tdp)
        p3 = SLEEP3.residency_power(tdp)
        assert p1 > p2 > p3 > 0
        assert p1 / tdp == pytest.approx(1 - 0.702)
        assert p3 / tdp == pytest.approx(1 - 0.978)


class TestSleepSelection:
    def test_no_state_fits_tiny_slack(self):
        assert select_sleep_state(DEFAULT_SLEEP_STATES, 1_000) is None

    def test_halt_fits_moderate_slack(self):
        # 25 us of slack covers Halt's 20 us round trip only.
        state = select_sleep_state(DEFAULT_SLEEP_STATES, 25_000)
        assert state is SLEEP1_HALT

    def test_deepest_state_wins_large_slack(self):
        state = select_sleep_state(DEFAULT_SLEEP_STATES, 1_000_000)
        assert state is SLEEP3

    def test_flush_cost_charged_only_to_non_snooping_states(self):
        # 40 us slack: Sleep2 round trip is 30 us, but a 15 us flush
        # pushes it out; Halt (snooping) is unaffected by the flush.
        state = select_sleep_state(
            DEFAULT_SLEEP_STATES, 40_000, flush_ns=15_000
        )
        assert state is SLEEP1_HALT

    def test_exact_fit_is_allowed(self):
        state = select_sleep_state((SLEEP1_HALT,), SLEEP1_HALT.round_trip_ns)
        assert state is SLEEP1_HALT

    def test_unconditional_mode_returns_shallowest(self):
        state = select_sleep_state(DEFAULT_SLEEP_STATES, 0, conditional=False)
        assert state is SLEEP1_HALT

    def test_empty_states_rejected(self):
        with pytest.raises(ConfigError):
            select_sleep_state((), 1_000_000)


class TestEnergyHelpers:
    def test_ramp_energy_is_trapezoid(self):
        # 100 W down to 20 W over 1 us -> 60 W average -> 60 uJ.
        assert ramp_energy(100.0, 20.0, 1_000) == pytest.approx(60e-6)

    def test_ramp_energy_zero_duration(self):
        assert ramp_energy(100.0, 20.0, 0) == 0.0

    def test_ramp_energy_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            ramp_energy(1.0, 1.0, -5)

    def test_sleep_interval_energy(self):
        # Sleep3 at TDP 100 W draws 2.2 W; 1 ms residency -> 2.2 mJ.
        joules = sleep_interval_energy(SLEEP3, 100.0, 1_000_000)
        assert joules == pytest.approx(2.2e-3)

    def test_sleep_interval_negative_rejected(self):
        with pytest.raises(ConfigError):
            sleep_interval_energy(SLEEP3, 100.0, -1)


class TestEnergyAccount:
    def test_constant_power_segment(self):
        account = EnergyAccount()
        account.add(Category.COMPUTE, 1_000_000, power_watts=50.0)
        assert account.energy_joules(Category.COMPUTE) == pytest.approx(50e-3)
        assert account.time_ns(Category.COMPUTE) == 1_000_000

    def test_precomputed_energy_segment(self):
        account = EnergyAccount()
        account.add(Category.TRANSITION, 10_000, energy_joules=1e-4)
        assert account.energy_joules(Category.TRANSITION) == pytest.approx(1e-4)

    def test_totals_sum_categories(self):
        account = EnergyAccount()
        account.add(Category.COMPUTE, 100, power_watts=1.0)
        account.add(Category.SPIN, 200, power_watts=1.0)
        assert account.time_ns() == 300
        assert account.energy_joules() == pytest.approx(300e-9)

    def test_merge_accumulates(self):
        left, right = EnergyAccount(), EnergyAccount()
        left.add(Category.SLEEP, 10, power_watts=2.0)
        right.add(Category.SLEEP, 30, power_watts=2.0)
        left.merge(right)
        assert left.time_ns(Category.SLEEP) == 40

    def test_breakdowns_cover_all_categories(self):
        account = EnergyAccount()
        assert set(account.energy_breakdown()) == {
            "compute", "spin", "transition", "sleep",
        }
        assert set(account.time_breakdown()) == set(
            account.energy_breakdown()
        )

    def test_requires_exactly_one_energy_spec(self):
        account = EnergyAccount()
        with pytest.raises(SimulationError):
            account.add(Category.SPIN, 10)
        with pytest.raises(SimulationError):
            account.add(Category.SPIN, 10, power_watts=1.0, energy_joules=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            EnergyAccount().add(Category.SPIN, -1, power_watts=1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(SimulationError):
            EnergyAccount().add(Category.SPIN, 1, energy_joules=-1.0)
