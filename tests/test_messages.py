"""Tests for the coherence message vocabulary."""

import pytest

from repro.coherence.messages import (
    CONTROL_BYTES,
    DATA_BYTES,
    Message,
    MessageType,
    message_bytes,
)


def test_control_messages_are_one_flit():
    for message_type in (
        MessageType.GETS, MessageType.GETX, MessageType.INV,
        MessageType.INV_ACK, MessageType.FETCH, MessageType.FETCH_INV,
        MessageType.WB_ACK,
    ):
        assert message_bytes(message_type) == CONTROL_BYTES


def test_data_messages_carry_a_line():
    for message_type in (
        MessageType.PUTX, MessageType.DATA_S, MessageType.DATA_X,
    ):
        assert message_bytes(message_type) == DATA_BYTES
        assert message_bytes(message_type) >= 64


def test_message_size_property():
    message = Message(MessageType.DATA_S, line_addr=0x10, src=0, dst=3)
    assert message.size_bytes == DATA_BYTES
    assert Message(MessageType.INV, 0x10, 1, 2).size_bytes == CONTROL_BYTES


def test_messages_are_immutable():
    message = Message(MessageType.GETS, 0x10, 0, 1)
    with pytest.raises(AttributeError):
        message.src = 5


def test_every_type_has_a_size():
    for message_type in MessageType:
        assert message_bytes(message_type) > 0
