"""Unit tests for events and combinators (repro.sim.events)."""

import pytest

from repro.errors import SchedulingError
from repro.sim import AllOf, AnyOf, Simulator


def test_event_lifecycle():
    sim = Simulator()
    event = sim.event()
    assert not event.triggered
    event.succeed(42)
    assert event.triggered and event.ok
    assert event.value == 42


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        _ = sim.event().value


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event().succeed()
    with pytest.raises(SchedulingError):
        event.succeed()
    with pytest.raises(SchedulingError):
        event.fail(RuntimeError("boom"))


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.event().fail("not an exception")


def test_event_failure_propagates_via_value():
    sim = Simulator()
    event = sim.event().fail(ValueError("bad"))
    assert event.triggered and not event.ok
    with pytest.raises(ValueError):
        _ = event.value


def test_callback_after_trigger_runs_immediately():
    sim = Simulator()
    event = sim.event().succeed("x")
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    assert seen == ["x"]


def test_callbacks_run_in_registration_order():
    sim = Simulator()
    event = sim.event()
    order = []
    event.add_callback(lambda ev: order.append(1))
    event.add_callback(lambda ev: order.append(2))
    event.succeed()
    assert order == [1, 2]


def test_timeout_fires_at_deadline():
    sim = Simulator()
    timeout = sim.timeout(25, value="done")
    fired = []
    timeout.add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [25]
    assert timeout.value == "done"


def test_timeout_cancel_prevents_fire():
    sim = Simulator()
    timeout = sim.timeout(25)
    timeout.cancel()
    sim.run()
    assert not timeout.triggered


def test_anyof_returns_winning_event():
    sim = Simulator()
    fast = sim.timeout(3, value="fast")
    slow = sim.timeout(9, value="slow")
    race = AnyOf(sim, [slow, fast])
    sim.run()
    assert race.value is fast
    assert race.value.value == "fast"


def test_anyof_only_first_counts():
    sim = Simulator()
    first = sim.timeout(3)
    second = sim.timeout(3)  # same tick, later insertion
    race = AnyOf(sim, [first, second])
    sim.run()
    assert race.value is first


def test_anyof_empty_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        AnyOf(sim, [])


def test_anyof_child_failure_fails_race():
    sim = Simulator()
    bad = sim.event()
    race = AnyOf(sim, [bad, sim.timeout(100)])
    bad.fail(RuntimeError("nope"))
    assert race.triggered and not race.ok


def test_allof_collects_values_in_order():
    sim = Simulator()
    first = sim.timeout(9, value="a")
    second = sim.timeout(3, value="b")
    both = AllOf(sim, [first, second])
    sim.run()
    assert both.value == ["a", "b"]


def test_allof_empty_succeeds_immediately():
    sim = Simulator()
    assert AllOf(sim, []).value == []


def test_allof_failure_short_circuits():
    sim = Simulator()
    bad = sim.event()
    both = AllOf(sim, [sim.timeout(5), bad])
    bad.fail(KeyError("k"))
    assert both.triggered and not both.ok
