"""Tests for the spin-then-halt baseline barrier."""

import pytest

from repro.config import SLEEP1_HALT, SLEEP2
from repro.energy.accounting import Category
from repro.errors import ConfigError
from repro.sync import ConventionalBarrier, SpinThenSleepBarrier

from tests.conftest import (
    make_domain,
    make_system,
    run_phases,
    staggered_schedules,
)


def build(threshold_ns=50_000, n_nodes=4):
    system = make_system(n_nodes=n_nodes)
    domain = make_domain(system)
    barrier = SpinThenSleepBarrier(
        system, domain, n_nodes, pc="sts",
        sleep_state=SLEEP1_HALT, spin_threshold_ns=threshold_ns,
    )
    return system, barrier


def test_short_stall_stays_spinning():
    system, barrier = build(threshold_ns=100_000)
    run_phases(system, barrier, staggered_schedules(4, 2, 10_000, 10_000))
    assert barrier.stats_sleeps == 0
    assert system.total_account().time_ns(Category.SLEEP) == 0


def test_long_stall_halts_after_threshold():
    system, barrier = build(threshold_ns=50_000)
    run_phases(system, barrier, staggered_schedules(4, 2, 0, 400_000))
    assert barrier.stats_sleeps > 0
    total = system.total_account()
    assert total.time_ns(Category.SLEEP) > 0
    # The threshold spin is still paid on every long stall.
    assert total.time_ns(Category.SPIN) >= 50_000 * barrier.stats_sleeps


def test_wakes_late_by_construction():
    # External-only wake-up: the exit transition is fully exposed, so
    # execution time trails the conventional barrier's.
    schedules = staggered_schedules(4, 3, 0, 400_000)
    system, barrier = build(threshold_ns=20_000)
    run_phases(system, barrier, schedules)
    base_system = make_system()
    base_domain = make_domain(base_system)
    base_barrier = ConventionalBarrier(base_system, base_domain, 4, pc="b")
    run_phases(base_system, base_barrier, schedules)
    assert system.execution_time_ns > base_system.execution_time_ns
    # ... but bounded by one exit latency per instance for the critical
    # thread plus overheads.
    assert system.execution_time_ns < (
        base_system.execution_time_ns
        + 3 * SLEEP1_HALT.transition_latency_ns
        + 3 * 20_000
    )


def test_saves_energy_versus_conventional_on_long_stalls():
    schedules = staggered_schedules(4, 3, 0, 2_000_000)
    system, barrier = build(threshold_ns=50_000)
    run_phases(system, barrier, schedules)
    base_system = make_system()
    base_domain = make_domain(base_system)
    base_barrier = ConventionalBarrier(base_system, base_domain, 4, pc="b")
    run_phases(base_system, base_barrier, schedules)
    assert (
        system.total_account().energy_joules()
        < base_system.total_account().energy_joules()
    )


def test_non_snooping_state_rejected():
    system = make_system()
    domain = make_domain(system)
    with pytest.raises(ConfigError):
        SpinThenSleepBarrier(
            system, domain, 4, pc="bad", sleep_state=SLEEP2
        )


def test_negative_threshold_rejected():
    system = make_system()
    domain = make_domain(system)
    with pytest.raises(ConfigError):
        SpinThenSleepBarrier(
            system, domain, 4, pc="bad",
            sleep_state=SLEEP1_HALT, spin_threshold_ns=-1,
        )
