"""Exporter tests: Chrome trace-event JSON and metric CSV dumps."""

import csv
import io
import json

import pytest

from repro.experiments.runner import run_experiment
from repro.telemetry import (
    BarrierDepart,
    LateWake,
    MetricsRegistry,
    PredictorHit,
    SleepExit,
    WakeUp,
)
from repro.telemetry.export import (
    chrome_trace_events,
    chrome_trace_json,
    metrics_to_csv,
    metrics_to_rows,
    write_chrome_trace,
)

THREADS = 8


@pytest.fixture(scope="module")
def snapshot():
    return run_experiment(
        "fmm", "thrifty", threads=THREADS, seed=1, telemetry=True
    ).telemetry


class TestChromeTraceEvents:
    def test_metadata_rows_name_process_and_threads(self, snapshot):
        rows = chrome_trace_events(snapshot.events, process_name="unit test")
        metadata = [row for row in rows if row["ph"] == "M"]
        names = {row["name"] for row in metadata}
        assert names == {"process_name", "thread_name"}
        process = next(
            row for row in metadata if row["name"] == "process_name"
        )
        assert process["args"]["name"] == "unit test"
        thread_rows = [
            row for row in metadata if row["name"] == "thread_name"
        ]
        assert len(thread_rows) == THREADS

    def test_span_events_are_well_formed(self, snapshot):
        rows = chrome_trace_events(snapshot.events)
        spans = [row for row in rows if row["ph"] == "X"]
        assert spans
        for span in spans:
            assert span["dur"] >= 0
            assert span["cat"] in ("barrier", "sleep")
            assert 0 <= span["tid"] < THREADS

    def test_span_counts_match_closing_events(self, snapshot):
        rows = chrome_trace_events(snapshot.events)
        spans = [row for row in rows if row["ph"] == "X"]
        closers = [
            event for event in snapshot.events
            if isinstance(event, (BarrierDepart, SleepExit))
        ]
        assert len(spans) == len(closers)

    def test_barrier_span_carries_stall(self, snapshot):
        rows = chrome_trace_events(snapshot.events)
        departures = [
            event for event in snapshot.events
            if isinstance(event, BarrierDepart)
        ]
        barrier_spans = [
            row for row in rows
            if row["ph"] == "X" and row["cat"] == "barrier"
        ]
        span = barrier_spans[0]
        match = departures[0]
        assert span["args"]["stall_ns"] == match.stall_ns
        assert span["ts"] == pytest.approx(match.arrived_ts / 1000.0)
        assert span["dur"] == pytest.approx(
            (match.ts - match.arrived_ts) / 1000.0
        )

    def test_instants_cover_wakes_and_releases(self, snapshot):
        rows = chrome_trace_events(snapshot.events)
        instants = [row for row in rows if row["ph"] == "i"]
        wake_count = sum(
            1 for event in snapshot.events if isinstance(event, WakeUp)
        )
        wake_rows = [
            row for row in instants if row["name"].startswith("wake:")
        ]
        assert len(wake_rows) == wake_count
        assert all(row["s"] == "t" for row in instants)

    def test_predictor_hits_not_drawn(self, snapshot):
        assert any(
            isinstance(event, PredictorHit) for event in snapshot.events
        )
        rows = chrome_trace_events(snapshot.events)
        assert not any("hit" in row.get("name", "") for row in rows)

    def test_zero_penalty_late_wakes_not_drawn(self):
        events = (
            LateWake(ts=100, thread=0, pc="b1", penalty_ns=0),
            LateWake(ts=200, thread=0, pc="b1", penalty_ns=40),
        )
        rows = chrome_trace_events(events)
        late = [row for row in rows if row.get("name") == "late wake"]
        assert len(late) == 1
        assert late[0]["args"]["penalty_ns"] == 40

    def test_empty_stream_still_valid(self):
        rows = chrome_trace_events(())
        assert [row["ph"] for row in rows] == ["M"]  # just the process name


class TestRobustnessRows:
    def test_fault_and_invariant_instants_drawn(self):
        from repro.telemetry import (
            FaultInjected,
            InvariantCheck,
            PredictorReenable,
        )

        events = (
            FaultInjected(
                ts=100, fault="timer_loss", target=3, magnitude_ns=2_000
            ),
            PredictorReenable(ts=200, thread=1, pc="b0"),
            InvariantCheck(
                ts=300, invariant="barrier-safety", passed=True,
                violations=0,
            ),
        )
        rows = chrome_trace_events(events)
        by_name = {row["name"]: row for row in rows if row["ph"] == "i"}
        fault = by_name["fault:timer_loss"]
        assert fault["cat"] == "fault"
        assert fault["tid"] == 3
        assert fault["args"]["magnitude_ns"] == 2_000
        reenable = by_name["reenable b0"]
        assert reenable["cat"] == "predictor"
        invariant = by_name["invariant:barrier-safety"]
        assert invariant["cat"] == "invariant"
        assert invariant["args"]["passed"] is True

    def test_chaos_run_trace_contains_fault_rows(self):
        from repro.faults import FaultPlan

        result = run_experiment(
            "fmm", "thrifty", threads=THREADS, seed=1, telemetry=True,
            fault_plan=FaultPlan(
                timer_drift_probability=1.0, spurious_wake_probability=0.5
            ),
        )
        rows = chrome_trace_events(result.telemetry.events)
        assert any(
            row.get("cat") == "fault" and row["ph"] == "i" for row in rows
        )


class TestChromeTraceJson:
    def test_document_shape(self, snapshot):
        document = json.loads(chrome_trace_json(snapshot.events))
        assert set(document) == {"displayTimeUnit", "traceEvents"}
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]

    def test_byte_identical_across_identical_runs(self, snapshot):
        again = run_experiment(
            "fmm", "thrifty", threads=THREADS, seed=1, telemetry=True
        ).telemetry
        assert chrome_trace_json(snapshot.events) == chrome_trace_json(
            again.events
        )

    def test_canonical_serialization(self, snapshot):
        text = chrome_trace_json(snapshot.events)
        assert ": " not in text and ", " not in text  # compact separators
        document = json.loads(text)
        re_serialized = json.dumps(
            document, sort_keys=True, separators=(",", ":")
        )
        assert text == re_serialized

    def test_write_chrome_trace(self, snapshot, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(
            snapshot.events, path, process_name="fmm thrifty"
        )
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert path.read_text() == chrome_trace_json(
            snapshot.events, process_name="fmm thrifty"
        )


class TestMetricsCsv:
    @staticmethod
    def _registry():
        registry = MetricsRegistry()
        registry.counter("c.total").inc(3)
        registry.gauge("g.level").set(9)
        histogram = registry.histogram("h.lat", bounds=(10, 100))
        histogram.observe(5)
        histogram.observe(500)
        return registry

    def test_rows_flatten_all_metric_types(self):
        rows = metrics_to_rows(self._registry().snapshot())
        assert ("counter", "c.total", "value", 3) in rows
        assert ("gauge", "g.level", "value", 9) in rows
        assert ("histogram", "h.lat", "count", 2) in rows
        assert ("histogram", "h.lat", "le_10", 1) in rows
        assert ("histogram", "h.lat", "le_100", 0) in rows
        assert ("histogram", "h.lat", "le_inf", 1) in rows

    def test_csv_round_trips_through_reader(self, tmp_path):
        path = tmp_path / "metrics.csv"
        text = metrics_to_csv(self._registry().snapshot(), path)
        assert path.read_text() == text
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["type", "name", "field", "value"]
        assert ["counter", "c.total", "value", "3"] in parsed

    def test_csv_is_deterministic(self, snapshot):
        assert metrics_to_csv(snapshot.metrics) == metrics_to_csv(
            snapshot.metrics
        )

    def test_real_run_exports(self, snapshot, tmp_path):
        text = metrics_to_csv(snapshot.metrics)
        assert "barrier.check_ins" in text
        assert "barrier.stall_ns" in text  # histogram present
