"""Determinism suite for the parallel experiment engine.

The simulator is bit-exact, so serial and parallel execution of the
same matrix must produce field-identical :class:`ExperimentResult`\\ s
— including thrifty stats, oracle metadata, and the energy/time
breakdowns — in identical order. These tests pin that contract for
two applications and two seeds, plus the engine's ordering and
degradation behavior.
"""

import time

import pytest

from repro.errors import ConfigError
from repro.experiments.parallel import (
    ExperimentCell,
    ExperimentEngine,
    _fork_context,
)
from repro.experiments.runner import ExperimentResult, run_matrix

APPS = ("fmm", "radix")
SEEDS = (1, 2)
CONFIGS = ("baseline", "thrifty", "ideal")  # live, thrifty-stats, derived
THREADS = 8


def assert_results_identical(a, b):
    """Field-for-field comparison, with a readable diff on mismatch."""
    assert isinstance(a, ExperimentResult), a
    assert isinstance(b, ExperimentResult), b
    assert a.app == b.app and a.config == b.config
    assert a.n_threads == b.n_threads
    assert a.execution_time_ns == b.execution_time_ns
    assert a.barrier_imbalance == b.barrier_imbalance
    assert a.energy_breakdown() == b.energy_breakdown()
    assert a.time_breakdown() == b.time_breakdown()
    assert a.thrifty_stats == b.thrifty_stats
    assert a.oracle_meta == b.oracle_meta
    assert a.identical(b)


def assert_matrices_identical(serial, parallel):
    assert list(serial) == list(parallel)  # same apps, same order
    for app in serial:
        assert list(serial[app]) == list(parallel[app])
        for config in serial[app]:
            assert_results_identical(serial[app][config], parallel[app][config])


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_equals_serial(self, seed):
        serial = run_matrix(
            apps=APPS, configs=CONFIGS, threads=THREADS, seed=seed,
            workers=1,
        )
        parallel = run_matrix(
            apps=APPS, configs=CONFIGS, threads=THREADS, seed=seed,
            workers=4,
        )
        assert_matrices_identical(serial, parallel)

    def test_seeds_actually_differ(self):
        # Guard against the suite above passing vacuously.
        one = run_matrix(
            apps=("fmm",), configs=("baseline",), threads=THREADS, seed=1
        )
        two = run_matrix(
            apps=("fmm",), configs=("baseline",), threads=THREADS, seed=2
        )
        assert not one["fmm"]["baseline"].identical(two["fmm"]["baseline"])

    def test_engine_serial_path_matches_legacy(self):
        # workers=1 through the engine (cells, no baseline sharing)
        # must still equal the classic run_app loop.
        engine = ExperimentEngine(workers=1, strict=True)
        via_engine = engine.run_matrix(
            APPS, configs=CONFIGS, threads=THREADS, seed=1
        )
        legacy = run_matrix(
            apps=APPS, configs=CONFIGS, threads=THREADS, seed=1, workers=1
        )
        assert_matrices_identical(legacy, via_engine)

    def test_chunked_dispatch_preserves_results(self):
        serial = run_matrix(
            apps=APPS, configs=CONFIGS, threads=THREADS, seed=1
        )
        engine = ExperimentEngine(workers=2, chunksize=4, strict=True)
        chunked = engine.run_matrix(
            APPS, configs=CONFIGS, threads=THREADS, seed=1
        )
        assert_matrices_identical(serial, chunked)


class TestOrdering:
    def test_results_in_submission_order_despite_completion_order(self):
        # Later cells finish first; results must still land by index.
        def task(cell):
            time.sleep(cell["delay"])
            return cell["name"]

        cells = [
            {"name": "slow", "delay": 0.4},
            {"name": "medium", "delay": 0.2},
            {"name": "fast", "delay": 0.0},
        ]
        engine = ExperimentEngine(workers=3, strict=True)
        assert engine.run_cells(cells, task_fn=task) == [
            "slow", "medium", "fast"
        ]

    def test_many_cells_few_workers(self):
        engine = ExperimentEngine(workers=2, chunksize=3)
        payloads = list(range(20))
        out = engine.run_cells(payloads, task_fn=lambda n: n * n)
        assert out == [n * n for n in payloads]
        assert engine.stats.executed == 20


class TestDegradation:
    def test_serial_fallback_without_fork(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.parallel._fork_context", lambda: None
        )
        engine = ExperimentEngine(workers=4, strict=True)
        assert engine.run_cells([1, 2, 3], task_fn=lambda n: -n) == [-1, -2, -3]

    def test_fork_context_available_on_linux(self):
        assert _fork_context() is not None

    def test_single_cell_stays_in_process(self):
        # One pending cell never pays process overhead.
        seen = []
        engine = ExperimentEngine(workers=4, strict=True)
        engine.run_cells([7], task_fn=lambda n: seen.append(n) or n)
        assert seen == [7]  # side effect visible => ran in this process


class TestValidation:
    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentEngine(workers=0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentEngine(timeout=-1)

    def test_bad_retries_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentEngine(retries=-1)

    def test_unknown_config_rejected_before_any_run(self):
        engine = ExperimentEngine(workers=1)
        with pytest.raises(ConfigError):
            engine.run_matrix(("fmm",), configs=("warp-speed",))
        assert engine.stats.submitted == 0

    def test_overrides_are_canonically_sorted(self):
        a = ExperimentCell.make(
            "fmm", "thrifty", overprediction_threshold=0.2,
            underprediction_factor=3.0,
        )
        b = ExperimentCell.make(
            "fmm", "thrifty", underprediction_factor=3.0,
            overprediction_threshold=0.2,
        )
        assert a == b
        assert a.key() == b.key()
