"""Precision tests of the thrifty barrier's wake-up timing
(Sections 3.2.1 and 3.3.2)."""

import pytest

from repro.config import ThriftyConfig
from repro.sync import ThriftyBarrier

from tests.conftest import make_domain, make_system, staggered_schedules, run_phases


def run_deterministic(config=None, n_instances=5, step_ns=500_000):
    """Zero-jitter staggered schedule: prediction can be exact."""
    system = make_system()
    domain = make_domain(system)
    barrier = ThriftyBarrier(system, domain, 4, pc="b0", config=config)
    schedules = staggered_schedules(4, n_instances, base_ns=50_000,
                                    step_ns=step_ns)
    trace = run_phases(system, barrier, schedules)
    return system, domain, barrier, trace


class TestInternalTimerAnticipation:
    def test_timer_wake_lands_at_predicted_release(self):
        # Internal-only wake-up with a perfectly repeatable interval:
        # the timer is armed (predicted wake - exit latency), so the
        # transition out completes right at the predicted wake time.
        config = ThriftyConfig(use_external_wakeup=False)
        system, domain, barrier, trace = run_deterministic(config)
        for record in trace.released_instances()[1:]:
            for thread, sleep_record in record.sleeps.items():
                if sleep_record.woke_by != "timer":
                    continue
                # The wake is on time or early, never hopelessly late:
                # penalty stays under 1% of the interval.
                assert sleep_record.penalty_ns < 0.01 * record.measured_bit

    def test_accurate_prediction_gives_tiny_residual_spin(self):
        system, _domain, barrier, trace = run_deterministic()
        # With deterministic intervals the predicted wake time is exact
        # up to the per-instance bookkeeping overheads (~a few hundred
        # ns); residual spins should be orders of magnitude below the
        # ~1.5 ms stalls.
        for record in trace.released_instances()[1:]:
            for thread in record.sleeps:
                departure = record.departures[thread]
                assert departure - record.release_ts < 50_000

    def test_sleep_residency_tracks_stall(self):
        system, _domain, barrier, trace = run_deterministic()
        for record in trace.released_instances()[1:]:
            for thread, sleep_record in record.sleeps.items():
                stall = record.stall_ns(thread)
                # Residency = stall - round trip (+/- prediction error).
                expected = stall - sleep_record_state_round_trip(
                    sleep_record
                )
                assert sleep_record.resident_ns == pytest.approx(
                    expected, abs=60_000
                )


def sleep_record_state_round_trip(sleep_record):
    from repro.config import DEFAULT_SLEEP_STATES

    for state in DEFAULT_SLEEP_STATES:
        if state.name == sleep_record.state_name:
            return state.round_trip_ns
    raise AssertionError("unknown state " + sleep_record.state_name)


class TestBrtsInduction:
    def test_brts_matches_release_within_overheads(self):
        system, domain, _barrier, trace = run_deterministic()
        releases = [r.release_ts for r in trace.released_instances()]
        # After the run, each thread's BRTS equals the last release up
        # to the check-in/latency overheads (no global clock was used).
        for thread in range(4):
            assert domain.brts(thread) == pytest.approx(
                releases[-1], abs=5_000
            )

    def test_bit_variable_equals_release_gaps(self):
        system, domain, _barrier, trace = run_deterministic()
        records = trace.released_instances()
        gaps = [
            records[i].release_ts - records[i - 1].release_ts
            for i in range(1, len(records))
        ]
        bits = [r.measured_bit for r in records[1:]]
        for gap, bit in zip(gaps, bits):
            assert bit == pytest.approx(gap, abs=2_000)


class TestSystemRunUntil:
    def test_partial_run_then_completion(self):
        system, domain, barrier, _ = (None,) * 4
        system = make_system()
        domain = make_domain(system)
        barrier = ThriftyBarrier(system, domain, 4, pc="b0")
        schedules = staggered_schedules(4, 3, 100_000, 100_000)

        def program(node):
            for duration in schedules[node.node_id]:
                yield from node.cpu.compute(duration)
                yield from barrier.wait(node)

        for node in system.nodes:
            system.spawn_thread(node.node_id, program(node))
        system.run(until=150_000)
        assert system.execution_time_ns == 150_000
        assert len(barrier.trace.released_instances()) == 0
        system.run()
        assert len(barrier.trace.released_instances()) == 3
