"""Kill-and-resume acceptance tests for crash-safe campaigns.

The property under test (the PR's acceptance criterion): a sweep
interrupted at an arbitrary point and resumed produces exports
**byte-identical** to an uninterrupted run, with completed cells never
re-executed — verified through the journal's record stream and the
engine/cache counters. Exercised three ways:

* deterministically, via a stub preemption object, for several seeds
  and cut points (serial engine path);
* on the parallel engine path (immediate preemption, drain, resume);
* end-to-end through the CLI, both with a stubbed guard (in-process)
  and with a real SIGTERM delivered to a ``python -m repro``
  subprocess.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.errors import CampaignInterrupted
from repro.experiments.export import matrix_to_json
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import ExperimentEngine

APPS = ("fmm",)
CONFIGS = ("baseline", "thrifty", "oracle-halt")
THREADS = 4


class TriggerAfter:
    """Preemption stub: ``requested`` flips true after ``n`` checks.

    The engine consults ``requested`` once per cell (serial path) /
    once per supervision round (parallel path), so this interrupts a
    campaign at a deterministic point with no real signals involved.
    """

    reason = "SIGTERM"
    drain_deadline_s = 5.0

    def __init__(self, n):
        self._fuse = n

    @property
    def requested(self):
        if self._fuse <= 0:
            return True
        self._fuse -= 1
        return False


def _reference_json(tmp_path, seed, **engine_kwargs):
    engine = ExperimentEngine(
        cache=tmp_path / "ref-cache-{}".format(seed), **engine_kwargs
    )
    matrix = engine.run_matrix(
        APPS, configs=CONFIGS, threads=THREADS, seed=seed,
    )
    return matrix_to_json(matrix)


class TestKillAndResumeProperty:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_interrupted_then_resumed_is_byte_identical(
        self, seed, tmp_path
    ):
        reference = _reference_json(tmp_path, seed)
        total = len(APPS) * len(CONFIGS)
        # Seeded-random cut point: each seed interrupts elsewhere.
        cut = random.Random(seed).randrange(1, total)
        root = tmp_path / "runs"
        cache_dir = tmp_path / "cache"
        journal = RunJournal.create(
            {"seed": seed}, run_id="acceptance", root=root,
        )
        engine = ExperimentEngine(
            cache=cache_dir, journal=journal, preemption=TriggerAfter(cut),
        )
        with pytest.raises(CampaignInterrupted) as excinfo:
            engine.run_matrix(
                APPS, configs=CONFIGS, threads=THREADS, seed=seed,
            )
        interrupt = excinfo.value
        assert interrupt.run_id == "acceptance"
        assert (interrupt.completed, interrupt.total) == (cut, total)
        # Partial results ride the exception, never discarded.
        assert sum(r is not None for r in interrupt.results) == cut

        state = RunJournal.open("acceptance", root=root).replay()
        assert len(state.completed) == cut
        assert state.interruptions == 1
        assert not state.finished

        resumed = RunJournal.open("acceptance", root=root)
        second = ExperimentEngine(cache=cache_dir, journal=resumed)
        matrix = second.run_matrix(
            APPS, configs=CONFIGS, threads=THREADS, seed=seed,
        )
        # Completed cells were restored from the cache, not re-run.
        assert second.stats.cache_hits == cut
        assert second.stats.executed == total - cut
        assert matrix_to_json(matrix) == reference

        state = resumed.replay()
        assert state.finished
        assert len(state.completed) == total

    def test_exported_files_are_byte_identical(self, tmp_path):
        seed = 1
        reference = _reference_json(tmp_path, seed)
        ref_path = tmp_path / "ref.json"
        out_path = tmp_path / "resumed.json"
        ref_path.write_text(reference + "\n")

        root = tmp_path / "runs"
        cache_dir = tmp_path / "cache"
        journal = RunJournal.create({"seed": seed}, run_id="r", root=root)
        engine = ExperimentEngine(
            cache=cache_dir, journal=journal, preemption=TriggerAfter(1),
        )
        with pytest.raises(CampaignInterrupted):
            engine.run_matrix(
                APPS, configs=CONFIGS, threads=THREADS, seed=seed,
            )
        second = ExperimentEngine(
            cache=cache_dir, journal=RunJournal.open("r", root=root),
        )
        matrix = second.run_matrix(
            APPS, configs=CONFIGS, threads=THREADS, seed=seed,
        )
        matrix_to_json(matrix, path=out_path)
        assert out_path.read_bytes() == ref_path.read_bytes()

    def test_parallel_preemption_drains_then_resumes(self, tmp_path):
        seed = 1
        reference = _reference_json(tmp_path, seed)
        total = len(APPS) * len(CONFIGS)
        root = tmp_path / "runs"
        cache_dir = tmp_path / "cache"
        journal = RunJournal.create({"seed": seed}, run_id="p", root=root)
        engine = ExperimentEngine(
            workers=2, cache=cache_dir, journal=journal,
            preemption=TriggerAfter(0),
        )
        with pytest.raises(CampaignInterrupted) as excinfo:
            engine.run_matrix(
                APPS, configs=CONFIGS, threads=THREADS, seed=seed,
            )
        # In-flight workers drained gracefully: their completions are
        # journaled and cached; only never-dispatched work remains.
        done = excinfo.value.completed
        assert 0 <= done < total
        state = RunJournal.open("p", root=root).replay()
        assert len(state.completed) == done

        second = ExperimentEngine(
            workers=2, cache=cache_dir,
            journal=RunJournal.open("p", root=root),
        )
        matrix = second.run_matrix(
            APPS, configs=CONFIGS, threads=THREADS, seed=seed,
        )
        assert second.stats.cache_hits == done
        assert matrix_to_json(matrix) == reference


class _StubGuard:
    """Context-manager guard the CLI can use in place of the real one."""

    reason = "SIGTERM"
    drain_deadline_s = 5.0

    def __init__(self, fuse):
        self._fuse = fuse

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    @property
    def requested(self):
        if self._fuse <= 0:
            return True
        self._fuse -= 1
        return False


class TestCliKillAndResume:
    def test_cli_interrupt_exits_3_then_resume_matches_reference(
        self, tmp_path, capsys, monkeypatch
    ):
        root = str(tmp_path / "runs")
        common = [
            "figure5", "--apps", "fmm", "--threads", "4",
            "--journal-dir", root,
        ]
        ref_json = tmp_path / "ref.json"
        assert main(common + [
            "--cache-dir", str(tmp_path / "ref-cache"),
            "--json", str(ref_json),
        ]) == 0
        capsys.readouterr()

        cache = str(tmp_path / "cache")
        with pytest.MonkeyPatch.context() as patched:
            patched.setattr(
                "repro.cli.PreemptionGuard", lambda: _StubGuard(2),
            )
            code = main(common + [
                "--run-id", "clikill", "--cache-dir", cache,
                "--json", str(tmp_path / "never-written.json"),
            ])
        assert code == 3
        err = capsys.readouterr().err
        assert "preempted (2 of 5 cells finished)" in err
        assert "--resume clikill" in err
        # An interrupted run never writes a (partial) export.
        assert not (tmp_path / "never-written.json").exists()

        out_json = tmp_path / "resumed.json"
        assert main(common + [
            "--resume", "clikill", "--cache-dir", cache,
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "engine.cache_hits" in out
        assert out_json.read_bytes() == ref_json.read_bytes()

    def test_cli_resume_rejects_different_campaign(self, tmp_path, capsys):
        root = str(tmp_path / "runs")
        ref = [
            "figure5", "--apps", "fmm", "--threads", "4",
            "--journal-dir", root, "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(ref + ["--run-id", "spec"]) == 0
        capsys.readouterr()
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="different campaign spec"):
            main([
                "figure5", "--apps", "ocean", "--threads", "4",
                "--journal-dir", root,
                "--cache-dir", str(tmp_path / "cache"),
                "--resume", "spec",
            ])


class TestSigtermSubprocess:
    def _env(self, tmp_path, cache_name):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                     if p]
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / cache_name)
        env["REPRO_JOURNAL_DIR"] = str(tmp_path / "runs")
        return env

    def _run(self, args, env):
        return subprocess.run(
            [sys.executable, "-m", "repro"] + args,
            env=env, capture_output=True, text=True, timeout=300,
        )

    def test_real_sigterm_is_resumable_byte_identically(self, tmp_path):
        # Enough cells (4 apps x 5 configs at 16 threads) that the
        # journal appears long before the sweep finishes.
        args = [
            "figure5", "--apps", "fmm", "ocean", "radix", "fft",
            "--threads", "16",
        ]
        reference = self._run(
            args + ["--json", str(tmp_path / "ref.json")],
            self._env(tmp_path, "ref-cache"),
        )
        assert reference.returncode == 0, reference.stderr

        env = self._env(tmp_path, "cache")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro"] + args + [
                "--run-id", "sig", "--json", str(tmp_path / "killed.json"),
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        journal_file = tmp_path / "runs" / "sig" / "journal.jsonl"
        deadline = time.monotonic() + 60.0
        while not journal_file.exists() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert journal_file.exists(), "sweep never started journaling"
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=300)
        assert process.returncode == 3, stderr
        assert "resume with: repro figure5 --resume sig" in stderr
        assert not (tmp_path / "killed.json").exists()

        resumed = self._run(
            args + ["--resume", "sig", "--json", str(tmp_path / "out.json")],
            env,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "engine.cache_hits" in resumed.stdout
        ref_bytes = (tmp_path / "ref.json").read_bytes()
        assert (tmp_path / "out.json").read_bytes() == ref_bytes
        # The journal agrees: every cell completed exactly once overall.
        records = [
            json.loads(line)
            for line in journal_file.read_text().splitlines()
        ]
        completed = {
            r["cell"] for r in records if r["record"] == "completed"
        }
        assert len(completed) == 20
        assert any(r["record"] == "interrupted" for r in records)
        assert any(r["record"] == "resumed" for r in records)
        assert any(r["record"] == "finished" for r in records)
