"""Tests for time-sharing (CpuToken) and the yielding barrier
(paper Section 3.4.1)."""

import pytest

from repro.energy.accounting import Category
from repro.errors import SimulationError
from repro.machine import CpuToken, make_tokens
from repro.machine.timeshare import DEFAULT_CONTEXT_SWITCH_NS
from repro.predict import TimingDomain
from repro.sync import ConventionalBarrier, ThriftyBarrier, YieldingBarrier

from tests.conftest import make_domain, make_system


class TestCpuToken:
    def test_first_acquire_is_free(self):
        system = make_system()
        token = CpuToken(system.nodes[0])

        def program(node):
            yield from token.acquire(0)
            assert token.owner == 0
            token.release(0)

        system.run_threads(program, n_threads=1)
        assert system.execution_time_ns == 0
        assert token.stats_switches == 0

    def test_reacquire_by_same_thread_is_free(self):
        system = make_system()
        token = CpuToken(system.nodes[0])

        def program(node):
            yield from token.acquire(0)
            token.release(0)
            yield from token.acquire(0)
            token.release(0)

        system.run_threads(program, n_threads=1)
        assert token.stats_switches == 0

    def test_handoff_pays_context_switch(self):
        system = make_system()
        node = system.nodes[0]
        token = CpuToken(node)
        log = []

        def first():
            yield from token.acquire(0)
            yield system.sim.timeout(1_000)
            token.release(0)

        def second():
            yield from token.acquire(1)
            log.append(system.sim.now)
            token.release(1)

        system.sim.spawn(first())
        system.sim.spawn(second())
        system.sim.run()
        assert log == [1_000 + DEFAULT_CONTEXT_SWITCH_NS]
        assert token.stats_switches == 1
        # The switch burns compute-power energy on the node.
        assert node.cpu.account.time_ns(Category.COMPUTE) == (
            DEFAULT_CONTEXT_SWITCH_NS
        )

    def test_fifo_ordering(self):
        system = make_system()
        token = CpuToken(system.nodes[0], context_switch_ns=0)
        order = []

        def holder(tid, hold):
            yield from token.acquire(tid)
            order.append(tid)
            yield system.sim.timeout(hold)
            token.release(tid)

        for tid in range(3):
            system.sim.spawn(holder(tid, 100))
        system.sim.run()
        assert order == [0, 1, 2]

    def test_release_by_non_owner_rejected(self):
        system = make_system()
        token = CpuToken(system.nodes[0])

        def bad():
            yield from token.acquire(0)
            token.release(1)

        process = system.sim.spawn(bad())
        system.sim.run()
        with pytest.raises(SimulationError):
            _ = process.value

    def test_make_tokens_maps_threads_round_robin(self):
        system = make_system(n_nodes=4)
        tokens, nodes = make_tokens(system, threads_per_cpu=2)
        assert len(tokens) == 8
        assert tokens[0] is tokens[4]
        assert nodes[1].node_id == 1
        assert nodes[5].node_id == 1

    def test_make_tokens_rejects_zero(self):
        system = make_system()
        with pytest.raises(SimulationError):
            make_tokens(system, threads_per_cpu=0)


def overthreaded_run(system, barrier, tokens, nodes, schedules):
    """Run len(schedules) threads on system.n_nodes CPUs."""
    processes = []
    for thread_id, phases in enumerate(schedules):
        def program(thread_id=thread_id, phases=phases):
            node = nodes[thread_id]
            token = tokens[thread_id]
            for duration in phases:
                yield from token.acquire(thread_id)
                yield from node.cpu.compute(duration)
                yield from barrier.wait(node, thread_id, token)
            yield from token.acquire(thread_id)
            token.release(thread_id)

        processes.append(system.sim.spawn(program()))
    system.run()
    return processes


class TestYieldingBarrier:
    def _setup(self, n_nodes=4, threads_per_cpu=2):
        system = make_system(n_nodes=n_nodes)
        n_threads = n_nodes * threads_per_cpu
        domain = make_domain(system, n_threads)
        barrier = YieldingBarrier(system, domain, n_threads, pc="yb")
        tokens, nodes = make_tokens(system, threads_per_cpu)
        return system, barrier, tokens, nodes, n_threads

    def test_overthreaded_barrier_completes(self):
        system, barrier, tokens, nodes, n_threads = self._setup()
        schedules = [[100_000, 150_000] for _ in range(n_threads)]
        overthreaded_run(system, barrier, tokens, nodes, schedules)
        assert len(barrier.trace.released_instances()) == 2
        for record in barrier.trace.released_instances():
            assert len(record.arrivals) == n_threads

    def test_yields_counted(self):
        system, barrier, tokens, nodes, n_threads = self._setup()
        schedules = [[100_000] for _ in range(n_threads)]
        overthreaded_run(system, barrier, tokens, nodes, schedules)
        assert barrier.stats_yields == n_threads - 1

    def test_no_spin_energy_while_yielded(self):
        system, barrier, tokens, nodes, n_threads = self._setup()
        # Thread 7 is much slower: everyone else yields for a long time.
        schedules = [[50_000] for _ in range(n_threads - 1)]
        schedules.append([2_000_000])
        overthreaded_run(system, barrier, tokens, nodes, schedules)
        total = system.total_account()
        # Blocked threads burn nothing: spin is only the check-in ops.
        assert total.time_ns(Category.SPIN) < 100_000
        assert total.time_ns(Category.SLEEP) == 0

    def test_resume_queues_behind_sibling(self):
        # The Section 3.4.1 hazard: after the release, both co-threads
        # of a CPU want it; one must wait for the other's next phase.
        system, barrier, tokens, nodes, n_threads = self._setup(
            n_nodes=2, threads_per_cpu=2
        )
        schedules = [[100_000, 400_000] for _ in range(n_threads)]
        overthreaded_run(system, barrier, tokens, nodes, schedules)
        # Phase 2 runs serialized per CPU: execution takes at least
        # two phase lengths after the first barrier.
        assert system.execution_time_ns > 100_000 + 2 * 400_000

    def test_dedicated_thrifty_beats_overthreaded_yielding(self):
        # Same total work: P dedicated threads with 2 units each vs.
        # 2P over-threaded threads with 1 unit each. Yielding avoids
        # spin energy but serializes compute on each CPU plus context
        # switches; thrifty keeps the dedicated timing.
        n_nodes = 4
        unit = 500_000
        yielding_system, barrier, tokens, nodes, n_threads = self._setup(
            n_nodes=n_nodes, threads_per_cpu=2
        )
        schedules = [[unit, unit] for _ in range(n_threads)]
        overthreaded_run(yielding_system, barrier, tokens, nodes, schedules)

        thrifty_system = make_system(n_nodes=n_nodes)
        domain = make_domain(thrifty_system, n_nodes)
        thrifty = ThriftyBarrier(thrifty_system, domain, n_nodes, pc="tb")

        def program(node):
            for _ in range(2):
                yield from node.cpu.compute(2 * unit)
                yield from thrifty.wait(node)

        thrifty_system.run_threads(program)
        assert (
            thrifty_system.execution_time_ns
            < yielding_system.execution_time_ns
        )

    def test_rejects_too_many_threads_only_for_dedicated_variants(self):
        system = make_system(n_nodes=4)
        domain = TimingDomain(system, 8)
        # Dedicated barrier refuses 8 threads on 4 nodes...
        with pytest.raises(SimulationError):
            ConventionalBarrier(system, domain, 8, pc="x")
        # ... the yielding barrier accepts them.
        YieldingBarrier(system, domain, 8, pc="y")
