"""Tests for the thrifty barrier (the paper's core mechanism)."""

from repro.config import (
    DEFAULT_SLEEP_STATES,
    SLEEP1_HALT,
    SLEEP3,
    ThriftyConfig,
)
from repro.energy.accounting import Category
from repro.sync import ConventionalBarrier, ThriftyBarrier

from tests.conftest import (
    make_domain,
    make_system,
    run_phases,
    staggered_schedules,
)

# One thread computes 200 us, the rest arrive immediately: each instance
# has a large (~600 us with step 200 us), perfectly repeatable stall.
BIG_IMBALANCE = staggered_schedules(4, 6, base_ns=50_000, step_ns=200_000)


def build_thrifty(config=None, n_nodes=4, n_threads=None):
    system = make_system(n_nodes=n_nodes)
    n_threads = n_threads or n_nodes
    domain = make_domain(system, n_threads)
    barrier = ThriftyBarrier(
        system, domain, n_threads, pc="b0", config=config
    )
    return system, domain, barrier


def build_baseline(n_nodes=4, n_threads=None):
    system = make_system(n_nodes=n_nodes)
    n_threads = n_threads or n_nodes
    domain = make_domain(system, n_threads)
    barrier = ConventionalBarrier(system, domain, n_threads, pc="b0")
    return system, domain, barrier


class TestWarmup:
    def test_first_instance_never_sleeps(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, staggered_schedules(4, 1, 0, 500_000))
        assert barrier.stats.sleeps == 0
        assert barrier.stats.cold_spins == 3

    def test_second_instance_sleeps(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, staggered_schedules(4, 2, 0, 500_000))
        assert barrier.stats.sleeps > 0


class TestSleepBehaviour:
    def test_stable_imbalance_sleeps_every_warm_instance(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, BIG_IMBALANCE)
        # 6 instances, 3 early threads each; instance 1 is warm-up.
        assert barrier.stats.sleeps == 5 * 3

    def test_deepest_state_chosen_for_large_stall(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, BIG_IMBALANCE)
        assert barrier.stats.sleeps_by_state.get(SLEEP3.name, 0) > 0

    def test_small_stall_falls_back_to_spin(self):
        # 5 us stalls cannot amortize even Halt's 20 us round trip.
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, staggered_schedules(4, 4, 10_000, 5_000))
        assert barrier.stats.sleeps == 0
        assert barrier.stats.spin_fallbacks > 0

    def test_halt_only_configuration_uses_halt(self):
        config = ThriftyConfig(sleep_states=(SLEEP1_HALT,))
        system, _, barrier = build_thrifty(config=config)
        run_phases(system, barrier, BIG_IMBALANCE)
        assert set(barrier.stats.sleeps_by_state) == {SLEEP1_HALT.name}

    def test_unconditional_sleep_strawman(self):
        config = ThriftyConfig(
            sleep_states=DEFAULT_SLEEP_STATES, conditional_sleep=False
        )
        system, _, barrier = build_thrifty(config=config)
        run_phases(system, barrier, staggered_schedules(4, 4, 10_000, 5_000))
        # Sleeps even though the stall cannot amortize the transition.
        assert barrier.stats.sleeps > 0

    def test_semantics_no_departure_before_last_arrival(self):
        system, _, barrier = build_thrifty()
        trace = run_phases(system, barrier, BIG_IMBALANCE)
        for record in trace.released_instances():
            last_arrival = max(record.arrivals.values())
            for departure in record.departures.values():
                assert departure >= last_arrival


class TestEnergyAndTime:
    def test_thrifty_saves_energy_on_imbalanced_workload(self):
        base_system, _, base_barrier = build_baseline()
        run_phases(base_system, base_barrier, BIG_IMBALANCE)
        thrifty_system, _, thrifty_barrier = build_thrifty()
        run_phases(thrifty_system, thrifty_barrier, BIG_IMBALANCE)
        base_joules = base_system.total_account().energy_joules()
        thrifty_joules = thrifty_system.total_account().energy_joules()
        assert thrifty_joules < 0.92 * base_joules

    def test_performance_degradation_is_bounded(self):
        base_system, _, base_barrier = build_baseline()
        run_phases(base_system, base_barrier, BIG_IMBALANCE)
        thrifty_system, _, thrifty_barrier = build_thrifty()
        run_phases(thrifty_system, thrifty_barrier, BIG_IMBALANCE)
        slowdown = (
            thrifty_system.execution_time_ns
            / base_system.execution_time_ns
        )
        assert slowdown < 1.05

    def test_sleep_time_replaces_spin_time(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, BIG_IMBALANCE)
        total = system.total_account()
        assert total.time_ns(Category.SLEEP) > total.time_ns(Category.SPIN)
        assert total.time_ns(Category.TRANSITION) > 0

    def test_balanced_workload_unchanged(self):
        balanced = staggered_schedules(4, 4, 100_000, 0)
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, balanced)
        assert barrier.stats.sleeps == 0


class TestHybridWakeup:
    def test_accurate_prediction_wakes_by_timer(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, BIG_IMBALANCE)
        assert barrier.stats.timer_wakes > barrier.stats.invalidation_wakes

    def test_external_only_wakes_by_invalidation(self):
        config = ThriftyConfig(use_internal_wakeup=False)
        system, _, barrier = build_thrifty(config=config)
        run_phases(system, barrier, BIG_IMBALANCE)
        assert barrier.stats.timer_wakes == 0
        assert barrier.stats.invalidation_wakes > 0

    def test_external_only_still_correct(self):
        config = ThriftyConfig(use_internal_wakeup=False)
        system, _, barrier = build_thrifty(config=config)
        trace = run_phases(system, barrier, BIG_IMBALANCE)
        assert len(trace.released_instances()) == 6

    def test_internal_only_survives_overprediction(self):
        # Shrinking intervals: last-value overpredicts; without the
        # external bound the thread oversleeps but the run completes.
        config = ThriftyConfig(use_external_wakeup=False)
        shrinking = [
            [800_000, 400_000, 200_000, 100_000] for _ in range(3)
        ] + [[1_600_000, 800_000, 400_000, 200_000]]
        system, _, barrier = build_thrifty(config=config)
        trace = run_phases(system, barrier, shrinking)
        assert len(trace.released_instances()) == 4

    def test_external_bound_caps_lateness(self):
        # Same shrinking workload with hybrid wake-up: wake-up happens
        # within one transition latency of the release.
        shrinking = [
            [800_000, 400_000, 200_000, 100_000] for _ in range(3)
        ] + [[1_600_000, 800_000, 400_000, 200_000]]
        system, _, barrier = build_thrifty()
        trace = run_phases(system, barrier, shrinking)
        for record in trace.released_instances():
            for sleep_record in record.sleeps.values():
                assert sleep_record.penalty_ns <= (
                    SLEEP3.transition_latency_ns + 10_000
                )


class TestOverpredictionCutoff:
    def test_swinging_intervals_trip_cutoff(self):
        # Ocean-style: the interval alternates 3 ms / 100 us, so the
        # last-value prediction is wrong every time; the penalty on the
        # short instances exceeds 10% of BIT and prediction is disabled.
        swing = [
            [3_000_000 if i % 2 == 0 else 20_000 for i in range(8)]
            for _ in range(3)
        ]
        swing.append(
            [3_000_000 + 600_000 if i % 2 == 0 else 100_000 for i in range(8)]
        )
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, swing)
        assert barrier.stats.cutoff_disables > 0
        assert barrier.stats.disabled_spins > 0

    def test_stable_intervals_never_trip_cutoff(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, BIG_IMBALANCE)
        assert barrier.stats.cutoff_disables == 0


class TestUnderpredictionFilter:
    def test_inordinate_interval_not_trained(self):
        # One instance is 40x longer (a "page fault"); the predictor
        # must keep the old, shorter value.
        phases = [500_000, 500_000, 20_000_000, 500_000]
        schedules = [list(phases) for _ in range(3)]
        schedules.append([p + 200_000 for p in phases])
        system, domain, barrier = build_thrifty()
        run_phases(system, barrier, schedules)
        assert barrier.stats.filtered_updates >= 1
        # Prediction after the spike is still near the normal interval.
        assert domain.predictor.peek("b0") < 5_000_000

    def test_filter_disabled_by_large_factor(self):
        config = ThriftyConfig(underprediction_factor=1_000.0)
        phases = [500_000, 500_000, 20_000_000, 500_000]
        schedules = [list(phases) for _ in range(3)]
        schedules.append([p + 200_000 for p in phases])
        system, domain, barrier = build_thrifty(config=config)
        run_phases(system, barrier, schedules)
        assert barrier.stats.filtered_updates == 0


class TestMixedBarriers:
    def test_thrifty_and_conventional_coexist(self):
        # Section 2: thrifty and conventional barriers may co-exist in
        # the same binary and share the timing domain.
        system = make_system()
        domain = make_domain(system)
        thrifty = ThriftyBarrier(system, domain, 4, pc="thrifty")
        conventional = ConventionalBarrier(system, domain, 4, pc="conv")

        def program(node):
            for _ in range(4):
                yield from node.cpu.compute(
                    100_000 * (node.node_id + 1)
                )
                yield from thrifty.wait(node)
                yield from node.cpu.compute(50_000)
                yield from conventional.wait(node)

        system.run_threads(program)
        assert len(thrifty.trace.released_instances()) == 4
        assert len(conventional.trace.released_instances()) == 4
        assert thrifty.stats.sleeps > 0

    def test_multiple_thrifty_barriers_share_predictor(self):
        system = make_system()
        domain = make_domain(system)
        trace = None
        b1 = ThriftyBarrier(system, domain, 4, pc="b1", trace=trace)
        b2 = ThriftyBarrier(system, domain, 4, pc="b2")

        def program(node):
            for _ in range(3):
                yield from node.cpu.compute(200_000 * (node.node_id + 1))
                yield from b1.wait(node)
                yield from node.cpu.compute(400_000 * (node.node_id + 1))
                yield from b2.wait(node)

        system.run_threads(program)
        # Separate PC-indexed entries were trained for each barrier.
        assert domain.predictor.peek("b1") is not None
        assert domain.predictor.peek("b2") is not None
        assert domain.predictor.peek("b2") > domain.predictor.peek("b1")


class TestDirtyFootprint:
    def test_deep_sleep_flush_charges_compute(self):
        system, _, barrier = build_thrifty()
        run_phases(system, barrier, BIG_IMBALANCE, dirty_lines=64)
        total = system.total_account()
        base_system, _, base_barrier = build_thrifty()
        run_phases(base_system, base_barrier, BIG_IMBALANCE, dirty_lines=0)
        assert total.time_ns(Category.COMPUTE) > (
            base_system.total_account().time_ns(Category.COMPUTE)
        )

    def test_flush_recorded_in_trace(self):
        system, _, barrier = build_thrifty()
        trace = run_phases(system, barrier, BIG_IMBALANCE, dirty_lines=16)
        flushed = [
            sleep_record.flushed_lines
            for record in trace.released_instances()
            for sleep_record in record.sleeps.values()
            if sleep_record.state_name == SLEEP3.name
        ]
        assert flushed and all(lines >= 16 for lines in flushed)
