"""Tests for the confidence-gated predictor (Section 3.3.3 extension)."""

import pytest

from repro.errors import ConfigError
from repro.predict import ConfidencePredictor, LastValuePredictor
from repro.sync import ThriftyBarrier

from tests.conftest import make_system, run_phases
from repro.predict import TimingDomain


def gated(threshold=2, maximum=3, tolerance=0.25):
    return ConfidencePredictor(
        LastValuePredictor(),
        threshold=threshold, maximum=maximum, tolerance=tolerance,
    )


class TestConfidenceCounter:
    def test_cold_entry_predicts_none(self):
        predictor = gated()
        assert predictor.predict("pc") is None

    def test_needs_confirmations_before_predicting(self):
        predictor = gated(threshold=2)
        predictor.update("pc", 1_000)      # confidence 1
        assert predictor.predict("pc") is None
        predictor.update("pc", 1_050)      # confirming -> confidence 2
        assert predictor.predict("pc") == 1_050

    def test_surprise_drops_confidence(self):
        predictor = gated(threshold=2)
        for value in (1_000, 1_000, 1_000):
            predictor.update("pc", value)
        assert predictor.predict("pc") == 1_000
        predictor.update("pc", 50_000)     # way off -> confidence drops
        predictor.update("pc", 50_500)     # still rebuilding
        assert predictor.confidence("pc") < 2 or (
            predictor.predict("pc") is not None
        )

    def test_alternating_values_never_gain_confidence(self):
        # The Ocean pattern: a confidence gate silences the entry.
        predictor = gated(threshold=2)
        for index in range(10):
            predictor.update("pc", 1_000 if index % 2 == 0 else 5_000)
        assert predictor.predict("pc") is None

    def test_recovers_after_stabilizing(self):
        predictor = gated(threshold=2)
        for index in range(6):
            predictor.update("pc", 1_000 if index % 2 == 0 else 5_000)
        for _ in range(4):
            predictor.update("pc", 2_000)
        assert predictor.predict("pc") == 2_000

    def test_counter_saturates(self):
        predictor = gated(threshold=2, maximum=3)
        for _ in range(10):
            predictor.update("pc", 1_000)
        assert predictor.confidence("pc") == 3

    def test_disable_bits_still_work(self):
        predictor = gated()
        predictor.update("pc", 1_000)
        predictor.update("pc", 1_000)
        predictor.disable("pc", 5)
        assert predictor.is_disabled("pc", 5)
        assert not predictor.is_disabled("pc", 4)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            ConfidencePredictor("not a predictor")
        with pytest.raises(ConfigError):
            ConfidencePredictor(LastValuePredictor(), threshold=0)
        with pytest.raises(ConfigError):
            ConfidencePredictor(
                LastValuePredictor(), threshold=5, maximum=3
            )
        with pytest.raises(ConfigError):
            ConfidencePredictor(LastValuePredictor(), tolerance=0)


class TestConfidenceInBarrier:
    def test_thrifty_with_confidence_gate(self):
        system = make_system()
        predictor = gated(threshold=2)
        domain = TimingDomain(system, 4, predictor=predictor)
        barrier = ThriftyBarrier(system, domain, 4, pc="b0")
        schedules = [
            [200_000] * 6, [200_000] * 6, [200_000] * 6, [700_000] * 6,
        ]
        run_phases(system, barrier, schedules)
        # The gate delays sleeping by one extra (confirming) instance
        # relative to plain last-value, then sleeps normally.
        assert barrier.stats.cold_spins >= 2 * 3
        assert barrier.stats.sleeps > 0
