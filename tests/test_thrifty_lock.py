"""Tests for the thrifty lock extension (paper Section 7 future work)."""

import pytest

from repro.energy.accounting import Category
from repro.errors import SimulationError
from repro.sync import SpinLock, ThriftyLock

from tests.conftest import make_system

HOLD_NS = 400_000  # long critical sections, worth sleeping through


def run_contenders(system, lock, hold_ns=HOLD_NS, rounds=2):
    order = []

    def program(node):
        for _ in range(rounds):
            yield from lock.acquire(node)
            order.append(node.node_id)
            yield from node.cpu.compute(hold_ns)
            yield from lock.release(node)

    system.run_threads(program)
    return order


def test_mutual_exclusion():
    system = make_system()
    lock = ThriftyLock(system)
    order = run_contenders(system, lock)
    assert len(order) == 8
    assert lock.stats.acquisitions == 8
    assert not lock.held


def test_sleeps_once_hold_time_learned():
    system = make_system()
    lock = ThriftyLock(system)
    run_contenders(system, lock, rounds=3)
    # The first round is cold (no hold-time history); later contenders
    # with long predicted waits sleep.
    assert lock.stats.sleeps > 0
    assert system.total_account().time_ns(Category.SLEEP) > 0


def test_cold_lock_spins():
    system = make_system()
    lock = ThriftyLock(system)
    run_contenders(system, lock, rounds=1)
    # No history on first contention round: every wait was a spin.
    assert lock.stats.sleeps == 0
    assert lock.stats.spin_waits > 0


def test_short_holds_never_sleep():
    system = make_system()
    lock = ThriftyLock(system)
    run_contenders(system, lock, hold_ns=1_000, rounds=3)
    assert lock.stats.sleeps == 0


def test_saves_energy_versus_spinlock():
    spin_system = make_system()
    spin_lock = SpinLock(spin_system)

    def spin_program(node):
        for _ in range(3):
            yield from spin_lock.acquire(node)
            yield from node.cpu.compute(HOLD_NS)
            yield from spin_lock.release(node)

    spin_system.run_threads(spin_program)

    thrifty_system = make_system()
    thrifty_lock = ThriftyLock(thrifty_system)
    run_contenders(thrifty_system, thrifty_lock, rounds=3)

    assert (
        thrifty_system.total_account().energy_joules()
        < spin_system.total_account().energy_joules()
    )


def test_performance_close_to_spinlock():
    spin_system = make_system()
    spin_lock = SpinLock(spin_system)

    def spin_program(node):
        for _ in range(3):
            yield from spin_lock.acquire(node)
            yield from node.cpu.compute(HOLD_NS)
            yield from spin_lock.release(node)

    spin_system.run_threads(spin_program)
    thrifty_system = make_system()
    run_contenders(thrifty_system, ThriftyLock(thrifty_system), rounds=3)
    ratio = (
        thrifty_system.execution_time_ns / spin_system.execution_time_ns
    )
    assert ratio < 1.06


def test_release_by_non_holder_rejected():
    system = make_system()
    lock = ThriftyLock(system)

    def bad(node):
        yield from lock.acquire(node)
        lock._holder = 42
        yield from lock.release(node)

    with pytest.raises(SimulationError):
        system.run_threads(bad, n_threads=1)
