"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_artifact_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure7"])

    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.threads == 64
        assert args.apps is None
        assert not args.chart


class TestMain:
    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "97.8%" in out

    def test_table1_prints_probes(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L1 round trip" in out

    def test_table2_single_app(self, capsys):
        assert main(["table2", "--apps", "radiosity", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "radiosity" in out
        assert "volrend" not in out

    def test_figure5_with_exports(self, capsys, tmp_path):
        json_path = tmp_path / "m.json"
        csv_path = tmp_path / "m.csv"
        assert main([
            "figure5", "--apps", "radiosity", "--threads", "16",
            "--chart", "--json", str(json_path), "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "|" in out  # the chart
        records = json.loads(json_path.read_text())
        assert len(records) == 5
        assert csv_path.exists()

    def test_headline(self, capsys):
        assert main([
            "headline", "--apps", "radiosity", "--threads", "16",
        ]) == 0
        assert "headline" in capsys.readouterr().out
