"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_artifact_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure7"])

    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        # --threads defaults per command (64 for experiments, 8 for
        # check); the parser leaves it None and main() resolves it.
        assert args.threads is None
        assert args.apps is None
        assert not args.chart

    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.schedules == 64
        assert args.depth == 24
        assert args.strategy == "dfs"
        assert args.mutant is None
        assert args.replay is None
        assert args.counterexample == "counterexample.json"
        assert not args.fail_fast

    def test_cell_command_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "fmm"
        assert args.config == "thrifty"
        assert args.trace is None
        assert args.metrics_csv is None


class TestMain:
    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "97.8%" in out

    def test_table1_prints_probes(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L1 round trip" in out

    def test_table2_single_app(self, capsys):
        assert main(["table2", "--apps", "radiosity", "--threads", "16"]) == 0
        out = capsys.readouterr().out
        assert "radiosity" in out
        assert "volrend" not in out

    def test_figure5_with_exports(self, capsys, tmp_path):
        json_path = tmp_path / "m.json"
        csv_path = tmp_path / "m.csv"
        assert main([
            "figure5", "--apps", "radiosity", "--threads", "16",
            "--chart", "--json", str(json_path), "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "|" in out  # the chart
        records = json.loads(json_path.read_text())
        assert len(records) == 5
        assert csv_path.exists()

    def test_headline(self, capsys):
        assert main([
            "headline", "--apps", "radiosity", "--threads", "16",
        ]) == 0
        assert "headline" in capsys.readouterr().out

    def test_matrix_prints_engine_and_cache_counters(self, capsys):
        # The default cache is live (conftest points REPRO_CACHE_DIR at a
        # per-session temp dir), which routes through the engine and
        # surfaces its counters in the run summary.
        assert main([
            "figure5", "--apps", "radiosity", "--threads", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine & cache counters" in out
        assert "engine.submitted" in out
        assert "cache.misses" in out


class TestCellCommands:
    def test_run_prints_summary_and_metrics(self, capsys):
        assert main([
            "run", "--app", "fmm", "--config", "thrifty",
            "--threads", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Cell summary" in out
        assert "events traced" in out
        assert "barrier.check_ins" in out
        assert "wake.total" in out

    def test_trace_prints_digest(self, capsys):
        assert main(["trace", "--app", "fmm", "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "Trace digest" in out
        assert "barrier.check_in" in out
        assert "Mean BIT (ns)" in out

    def test_metrics_prints_tables(self, capsys):
        assert main([
            "metrics", "--app", "fmm", "--config", "thrifty-halt",
            "--threads", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Telemetry metrics" in out
        assert "sleep.entries" in out
        assert "Histogram" in out

    def test_trace_export_is_loadable_json(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        csv_path = tmp_path / "metrics.csv"
        assert main([
            "run", "--app", "fmm", "--threads", "8",
            "--trace", str(trace_path), "--metrics-csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]
        phases = {row["ph"] for row in document["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        assert csv_path.read_text().startswith("type,name,field,value")

    def test_unknown_config_fails_cleanly(self, capsys):
        assert main(["run", "--config", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown configuration" in err
        assert "thrifty" in err  # lists the valid choices


class TestChaosCommand:
    def test_campaign_reports_and_exits_zero(self, capsys):
        assert main([
            "chaos", "--apps", "fmm", "--threads", "8",
            "--plans", "1", "--configs", "thrifty",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chaos campaign" in out
        assert "OK:" in out
        assert "0 invariant violation(s)" in out


class TestExitCodes:
    """Every documented exit status, from repro.cli's docstring.

    0 = clean, 1 = campaign finished with violations, 2 = bad
    invocation, 3 = gracefully preempted (resumable).
    """

    def test_constants(self):
        from repro.cli import (
            EXIT_OK,
            EXIT_RESUMABLE,
            EXIT_USAGE,
            EXIT_VIOLATION,
        )

        assert (EXIT_OK, EXIT_VIOLATION, EXIT_USAGE, EXIT_RESUMABLE) == (
            0, 1, 2, 3,
        )

    def test_usage_error_exits_2(self, capsys):
        assert main(["run", "--config", "nonsense"]) == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_chaos_violations_exit_1(self, capsys, monkeypatch):
        import repro.faults.chaos as chaos_module
        from repro.faults.chaos import ChaosCampaignReport, ChaosCellReport
        from repro.faults.plan import FaultPlan

        class StubViolation:
            def describe(self):
                return "stub: a thread overslept"

        cell = ChaosCellReport(
            app="fmm", config="thrifty", plan=FaultPlan.sample(0),
            threads=8, violations=(StubViolation(),), injected={},
            late_wakes=0, releases=1, execution_time_ns=1,
            energy_joules=1.0,
        )
        report = ChaosCampaignReport(cells=[cell], planned=1)

        def fake_campaign(*args, **kwargs):
            return report

        monkeypatch.setattr(
            chaos_module, "run_chaos_campaign", fake_campaign,
        )
        assert main([
            "chaos", "--apps", "fmm", "--threads", "8", "--plans", "1",
        ]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "stub: a thread overslept" in out

    def test_chaos_interrupt_exits_3_with_resume_hint(
        self, capsys, monkeypatch, tmp_path
    ):
        import repro.faults.chaos as chaos_module
        from repro.faults.chaos import ChaosCampaignReport

        report = ChaosCampaignReport(
            cells=[], planned=5, interrupted=True, run_id="soak",
        )
        monkeypatch.setattr(
            chaos_module, "run_chaos_campaign",
            lambda *args, **kwargs: report,
        )
        assert main([
            "chaos", "--apps", "fmm", "--threads", "8", "--plans", "1",
            "--run-id", "soak", "--journal-dir", str(tmp_path),
        ]) == 3
        out = capsys.readouterr().out
        assert "INTERRUPTED (resumable)" in out
        assert "repro chaos --resume soak" in out

    def test_chaos_interrupt_without_journal_suggests_run_id(
        self, capsys, monkeypatch
    ):
        import repro.faults.chaos as chaos_module
        from repro.faults.chaos import ChaosCampaignReport

        report = ChaosCampaignReport(cells=[], planned=5, interrupted=True)
        monkeypatch.setattr(
            chaos_module, "run_chaos_campaign",
            lambda *args, **kwargs: report,
        )
        assert main([
            "chaos", "--apps", "fmm", "--threads", "8", "--plans", "1",
        ]) == 3
        assert "--run-id" in capsys.readouterr().out


class TestChaosResume:
    def test_journaled_campaign_resumes_without_rerunning(
        self, capsys, tmp_path
    ):
        root = str(tmp_path / "runs")
        common = [
            "chaos", "--apps", "fmm", "--threads", "8", "--plans", "2",
            "--configs", "thrifty", "--journal-dir", root,
        ]
        assert main(common + ["--run-id", "round"]) == 0
        first = capsys.readouterr().out
        assert "restored from the run journal" not in first

        assert main(common + ["--resume", "round"]) == 0
        second = capsys.readouterr().out
        assert "2 cell(s) restored from the run journal" in second
        # Identical campaign summary either way (the restored cells are
        # the journaled payloads of the first run).
        def table(text):
            return [
                line for line in text.splitlines()
                if line.startswith(("fmm", "OK:"))
            ]

        assert table(first) == table(second)


class TestServeParser:
    def test_serve_commands_are_known(self):
        for command in ("serve", "submit", "status", "results", "cancel",
                        "shutdown", "cache"):
            args = build_parser().parse_args([command])
            assert args.artifact == command

    def test_action_positional(self):
        args = build_parser().parse_args(["status", "c123"])
        assert args.action == "c123"
        args = build_parser().parse_args(["cache", "prune",
                                          "--max-entries", "10"])
        assert args.action == "prune"
        assert args.max_entries == 10

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--pool", "4", "--host", "0.0.0.0"]
        )
        assert args.port == 0
        assert args.pool == 4
        assert args.host == "0.0.0.0"


class TestServeCommands:
    def test_serve_refuses_no_cache(self, capsys):
        assert main(["serve", "--no-cache"]) == 2
        assert "result cache" in capsys.readouterr().err

    def test_client_without_server_exits_1(self, capsys):
        assert main(["status", "c1", "--port", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_status_needs_an_id(self, capsys):
        assert main(["status", "--port", "1"]) == 2
        assert "campaign id" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_default_action(self, capsys, tmp_path):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0
        assert stats["layout"] == {"sharded": 0, "flat": 0}
        assert stats["cache_dir"] == str(tmp_path)

    def test_prune_and_clear(self, capsys, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(str(tmp_path))
        for n in range(5):
            cache.put("{:x}abc".format(n), {"n": n})
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-entries", "3"]) == 0
        captured = capsys.readouterr()
        assert "evicted 2 entries" in captured.err
        assert json.loads(captured.out)["entries"] == 3
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "removed 3 entries" in captured.err
        assert json.loads(captured.out)["entries"] == 0

    def test_prune_needs_budget(self, capsys, tmp_path):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-entries" in capsys.readouterr().err

    def test_unknown_action_is_usage_error(self, capsys, tmp_path):
        assert main(["cache", "vacuum", "--cache-dir", str(tmp_path)]) == 2
        assert "unknown cache action" in capsys.readouterr().err

    def test_no_cache_flag_conflicts(self, capsys):
        assert main(["cache", "--no-cache"]) == 2
