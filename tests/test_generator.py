"""Tests for the workload runner (model x system x barrier factory)."""

import pytest

from repro.config import MachineConfig
from repro.errors import WorkloadError
from repro.machine import System
from repro.sync import ThriftyBarrier
from repro.workloads import (
    PhaseSpec,
    RotatingStraggler,
    WorkloadModel,
    WorkloadRunner,
)


def toy_model(iterations=4):
    return WorkloadModel(
        name="toy",
        loop_phases=(
            PhaseSpec("toy.a", 300_000, RotatingStraggler(0.5, sigma=0)),
            PhaseSpec("toy.b", 200_000, RotatingStraggler(0.5, sigma=0)),
        ),
        iterations=iterations,
        default_threads=4,
    )


def small_system():
    return System(MachineConfig(n_nodes=4))


def thrifty_factory(system, domain, n_threads, pc, trace):
    return ThriftyBarrier(system, domain, n_threads, pc, trace=trace)


class TestWorkloadRunner:
    def test_run_produces_complete_result(self):
        result = WorkloadRunner(toy_model(), system=small_system()).run()
        assert result.app == "toy"
        assert result.n_threads == 4
        assert result.execution_time_ns > 0
        assert len(result.accounts) == 4
        assert result.energy_joules > 0

    def test_trace_has_all_instances(self):
        model = toy_model(iterations=5)
        result = WorkloadRunner(model, system=small_system()).run()
        assert len(result.trace.released_instances()) == (
            model.dynamic_instances
        )

    def test_one_barrier_object_per_static_pc(self):
        runner = WorkloadRunner(toy_model(), system=small_system())
        assert set(runner.barriers) == {"toy.a", "toy.b"}

    def test_deterministic_for_fixed_seed(self):
        first = WorkloadRunner(
            toy_model(), system=small_system(), seed=11
        ).run()
        second = WorkloadRunner(
            toy_model(), system=small_system(), seed=11
        ).run()
        assert first.execution_time_ns == second.execution_time_ns
        assert first.energy_joules == pytest.approx(second.energy_joules)

    def test_thrifty_factory_changes_behaviour(self):
        baseline = WorkloadRunner(
            toy_model(), system=small_system(), seed=1
        ).run()
        thrifty = WorkloadRunner(
            toy_model(), system=small_system(), seed=1,
            barrier_factory=thrifty_factory,
        ).run()
        assert thrifty.energy_joules < baseline.energy_joules
        assert isinstance(
            list(thrifty.barriers.values())[0], ThriftyBarrier
        )

    def test_too_many_threads_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadRunner(
                toy_model(), system=small_system(), n_threads=8
            )

    def test_imbalance_metric_in_unit_range(self):
        result = WorkloadRunner(toy_model(), system=small_system()).run()
        assert 0.0 < result.barrier_imbalance() < 1.0

    def test_breakdowns_available(self):
        result = WorkloadRunner(toy_model(), system=small_system()).run()
        assert set(result.energy_breakdown()) == {
            "compute", "spin", "transition", "sleep",
        }
        assert result.time_breakdown()["compute"] > 0
