"""Fault plans, injector seams, and perturbed-run determinism."""

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import run_experiment
from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.sim.core import Simulator
from repro.sim.events import Event
from repro.telemetry.events import FaultInjected
from repro.telemetry.export import chrome_trace_json
from repro.telemetry.tracer import Tracer

#: A plan exercising every seam with certainty, for seam unit tests and
#: guaranteed-injection run tests.
EVERY_SEAM = dict(
    timer_drift_probability=1.0, timer_drift_max_ns=5_000,
    timer_loss_probability=0.0,
    invalidation_delay_probability=1.0, invalidation_delay_max_ns=5_000,
    transition_jitter_probability=1.0, transition_jitter_max_ns=2_000,
    spurious_wake_probability=1.0, spurious_wake_max_ns=10_000,
    stall_probability=0.2,
)


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert "noop" in plan.describe()

    def test_validation_rejects_bad_probability(self):
        with pytest.raises(ConfigError):
            FaultPlan(timer_loss_probability=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(stall_probability=-0.1)

    def test_validation_rejects_negative_magnitude(self):
        with pytest.raises(ConfigError):
            FaultPlan(timer_drift_max_ns=-1)

    def test_drops_require_redelivery(self):
        # A dropped-and-never-redelivered invalidation would break the
        # liveness guarantee by construction; the plan refuses it.
        with pytest.raises(ConfigError):
            FaultPlan(
                invalidation_drop_probability=0.5,
                invalidation_redeliver_ns=0,
            )

    def test_sample_is_deterministic(self):
        assert FaultPlan.sample(5) == FaultPlan.sample(5)
        assert FaultPlan.sample(5) != FaultPlan.sample(6)

    def test_sample_zero_intensity_is_noop(self):
        assert FaultPlan.sample(5, intensity=0.0).is_noop

    def test_as_dict_round_trips(self):
        plan = FaultPlan.sample(3)
        assert FaultPlan(**plan.as_dict()) == plan


def make_injector(**plan_fields):
    sim = Simulator()
    injector = FaultInjector(FaultPlan(**plan_fields), sim)
    return sim, injector


class TestInjectorSeams:
    def test_timer_loss(self):
        _, injector = make_injector(timer_loss_probability=1.0)
        delay, lost = injector.on_wake_timer(0, 1_000)
        assert (delay, lost) == (1_000, True)
        assert injector.counts == {"timer_loss": 1}

    def test_timer_drift_stays_non_negative(self):
        _, injector = make_injector(
            timer_drift_probability=1.0, timer_drift_max_ns=5_000
        )
        for _ in range(50):
            delay, lost = injector.on_wake_timer(0, 1_000)
            assert not lost
            assert delay >= 0
        assert injector.counts["timer_drift"] == 50

    def test_invalidation_drop_redelivers(self):
        _, injector = make_injector(
            invalidation_drop_probability=1.0,
            invalidation_redeliver_ns=77_000,
        )
        assert injector.on_monitor_fire(0, 0x100) == 77_000
        assert injector.counts == {"invalidation_drop": 1}

    def test_invalidation_delay_bounded(self):
        _, injector = make_injector(
            invalidation_delay_probability=1.0,
            invalidation_delay_max_ns=4_000,
        )
        for _ in range(50):
            assert 0 <= injector.on_monitor_fire(0, 0x100) <= 4_000

    def test_transition_jitter_bounded(self):
        _, injector = make_injector(
            transition_jitter_probability=1.0,
            transition_jitter_max_ns=3_000,
        )
        for _ in range(50):
            assert 0 <= injector.on_transition(0, "Sleep3") <= 3_000

    def test_spurious_wake_fires_with_sentinel_value(self):
        sim, injector = make_injector(
            spurious_wake_probability=1.0, spurious_wake_max_ns=500
        )
        wake = Event(sim)
        injector.on_sleep_entry(0, wake)
        sim.run()
        assert wake.triggered
        assert wake.value == "fault:spurious"
        assert injector.counts == {"spurious_wake": 1}

    def test_spurious_wake_never_double_triggers(self):
        # A real wake-up that beats the stray signal must win cleanly:
        # the scheduled fire is guarded and records nothing.
        sim, injector = make_injector(
            spurious_wake_probability=1.0, spurious_wake_max_ns=500
        )
        wake = Event(sim)
        injector.on_sleep_entry(0, wake)
        wake.succeed("real")
        sim.run()
        assert wake.value == "real"
        assert injector.counts == {}

    def test_perturb_hook_only_with_stall_component(self):
        _, without = make_injector(stall_probability=0.0)
        assert without.perturb_hook() is None
        _, with_stalls = make_injector(stall_probability=0.5)
        assert callable(with_stalls.perturb_hook())

    def test_seam_streams_are_independent(self):
        # Consuming one seam's stream must not shift another's draws.
        _, reference = make_injector(**EVERY_SEAM)
        expected = reference.on_transition(0, "Sleep3")
        _, injector = make_injector(**EVERY_SEAM)
        for _ in range(10):
            injector.on_wake_timer(0, 1_000)
            injector.on_monitor_fire(0, 0x100)
        assert injector.on_transition(0, "Sleep3") == expected

    def test_fault_kinds_cover_all_counters(self):
        _, injector = make_injector(
            timer_loss_probability=1.0, spurious_wake_probability=1.0
        )
        injector.on_wake_timer(0, 1_000)
        assert set(injector.counts) <= set(FAULT_KINDS)
        assert injector.total_injected == 1


class TestPerturbedRuns:
    def test_noop_plan_identical_to_no_plan(self):
        plain = run_experiment("fmm", "thrifty", threads=8)
        noop = run_experiment(
            "fmm", "thrifty", threads=8, fault_plan=FaultPlan()
        )
        assert plain.identical(noop)

    def test_plan_actually_perturbs_and_is_observable(self):
        plan = FaultPlan(**EVERY_SEAM)
        result = run_experiment(
            "fmm", "thrifty", threads=8, telemetry=True, fault_plan=plan
        )
        injected = [
            event for event in result.telemetry.events
            if isinstance(event, FaultInjected)
        ]
        assert injected
        assert {event.fault for event in injected} <= set(FAULT_KINDS)

    def test_same_plan_same_run_byte_identical_trace(self):
        plan = FaultPlan.sample(3)

        def trace():
            result = run_experiment(
                "fmm", "thrifty", threads=8, telemetry=True,
                fault_plan=plan,
            )
            return result, chrome_trace_json(result.telemetry.events)

        first, first_json = trace()
        second, second_json = trace()
        assert first_json == second_json
        assert first.identical(second)

    def test_different_plan_seeds_diverge(self):
        base = dict(EVERY_SEAM)
        one = run_experiment(
            "fmm", "thrifty", threads=8, telemetry=True,
            fault_plan=FaultPlan(seed=1, **base),
        )
        two = run_experiment(
            "fmm", "thrifty", threads=8, telemetry=True,
            fault_plan=FaultPlan(seed=2, **base),
        )
        assert chrome_trace_json(one.telemetry.events) != (
            chrome_trace_json(two.telemetry.events)
        )

    def test_fault_counters_surface_in_metrics(self):
        tracer = Tracer()
        plan = FaultPlan(**EVERY_SEAM)
        run_experiment(
            "fmm", "thrifty", threads=8, telemetry=tracer, fault_plan=plan
        )
        counters = tracer.metrics.snapshot().get("counters", {})
        assert counters.get("fault.injected", 0) > 0
        assert any(
            counters.get("fault.kind[{}]".format(kind), 0) > 0
            for kind in FAULT_KINDS
        )
