"""Tests for the experiment harness (configs, runner, metrics)."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    CONFIG_NAMES,
    CONFIG_SHORT,
    DERIVED_CONFIGS,
    LIVE_CONFIGS,
    run_experiment,
)
from repro.experiments.configs import barrier_factory_for, thrifty_config_for
from repro.experiments.metrics import (
    SEGMENTS,
    energy_savings,
    headline_summary,
    normalized_breakdown,
    normalized_total,
    slowdown,
)
from repro.experiments.runner import run_app

THREADS = 16  # smaller machine for unit-test speed; 64 in benchmarks


@pytest.fixture(scope="module")
def fmm_results():
    return run_app("fmm", threads=THREADS)


class TestConfigs:
    def test_five_configurations(self):
        assert len(CONFIG_NAMES) == 5
        assert set(LIVE_CONFIGS) | set(DERIVED_CONFIGS) == set(
            CONFIG_NAMES
        )

    def test_short_labels_match_paper(self):
        assert [CONFIG_SHORT[c] for c in CONFIG_NAMES] == [
            "B", "H", "O", "T", "I",
        ]

    def test_thrifty_halt_has_single_state(self):
        config = thrifty_config_for("thrifty-halt")
        assert len(config.sleep_states) == 1
        assert config.sleep_states[0].snoops

    def test_factory_rejects_derived_configs(self):
        with pytest.raises(ConfigError):
            barrier_factory_for("oracle-halt")

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fmm", "turbo", threads=THREADS)


class TestRunApp:
    def test_all_five_results_present(self, fmm_results):
        assert set(fmm_results) == set(CONFIG_NAMES)

    def test_derived_configs_keep_baseline_time(self, fmm_results):
        baseline = fmm_results["baseline"]
        for config in DERIVED_CONFIGS:
            assert (
                fmm_results[config].execution_time_ns
                == baseline.execution_time_ns
            )

    def test_energy_ordering(self, fmm_results):
        # Ideal <= Oracle-Halt <= Baseline, and thrifty variants save.
        joules = {c: fmm_results[c].energy_joules for c in CONFIG_NAMES}
        assert joules["ideal"] <= joules["oracle-halt"] <= joules["baseline"]
        assert joules["thrifty"] < joules["baseline"]
        assert joules["thrifty-halt"] < joules["baseline"]
        assert joules["ideal"] <= joules["thrifty"]

    def test_thrifty_stats_attached(self, fmm_results):
        stats = fmm_results["thrifty"].thrifty_stats
        assert stats["sleeps"] > 0
        assert any(key.startswith("sleeps[") for key in stats)

    def test_oracle_meta_attached(self, fmm_results):
        meta = fmm_results["oracle-halt"].oracle_meta
        assert meta["slept_stalls"] > 0

    def test_subset_of_configs(self):
        results = run_app(
            "radiosity", threads=THREADS, configs=("baseline", "ideal")
        )
        assert set(results) == {"baseline", "ideal"}


class TestMetrics:
    def test_baseline_normalizes_to_100(self, fmm_results):
        baseline = fmm_results["baseline"]
        assert normalized_total(baseline, baseline) == pytest.approx(100.0)
        assert normalized_total(
            baseline, baseline, kind="time"
        ) == pytest.approx(100.0)

    def test_breakdown_sums_to_total(self, fmm_results):
        baseline = fmm_results["baseline"]
        thrifty = fmm_results["thrifty"]
        breakdown = normalized_breakdown(thrifty, baseline)
        assert sum(breakdown.values()) == pytest.approx(
            normalized_total(thrifty, baseline)
        )

    def test_segments_cover_categories(self):
        assert set(SEGMENTS) == {"compute", "spin", "transition", "sleep"}

    def test_invalid_kind_rejected(self, fmm_results):
        baseline = fmm_results["baseline"]
        with pytest.raises(ConfigError):
            normalized_breakdown(baseline, baseline, kind="power")

    def test_savings_and_slowdown_signs(self, fmm_results):
        baseline = fmm_results["baseline"]
        thrifty = fmm_results["thrifty"]
        assert energy_savings(thrifty, baseline) > 0
        assert slowdown(thrifty, baseline) > -0.01

    def test_headline_summary_structure(self, fmm_results):
        matrix = {"fmm": fmm_results}
        summary = headline_summary(matrix, target_apps=("fmm",))
        assert set(summary) == set(CONFIG_NAMES) - {"baseline"}
        entry = summary["thrifty"]
        assert 0 < entry["target_energy_savings"] < 1
        assert entry["target_slowdown"] < 0.1
        # The oracle configurations never slow down.
        assert summary["ideal"]["target_slowdown"] == 0.0
