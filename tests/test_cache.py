"""Unit tests for the two caches of the system.

Part 1 covers the simulated hardware caches (arrays and the L1/L2
hierarchy); part 2, at the bottom, covers the on-disk experiment
result cache (content keys, hit/miss accounting, corruption
tolerance, eviction).
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig
from repro.coherence.cache import Cache, CacheHierarchy, LineState
from repro.errors import ConfigError, ProtocolError
from repro.experiments.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    content_key,
    default_cache_dir,
)


def tiny_cache(ways=2, sets=2):
    config = CacheConfig(
        size_bytes=64 * ways * sets, line_bytes=64, ways=ways,
        round_trip_ns=2, freq_mhz=1000,
    )
    return Cache(config, name="tiny")


class TestCache:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.lookup(0) is None
        cache.insert(0, LineState.SHARED)
        assert cache.lookup(0) is LineState.SHARED

    def test_lru_eviction_within_set(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.insert(0, LineState.SHARED)
        cache.insert(1, LineState.SHARED)
        cache.touch(0)  # 1 becomes LRU
        evicted = cache.insert(2, LineState.SHARED)
        assert evicted == (1, LineState.SHARED)
        assert cache.lookup(0) is not None

    def test_insert_existing_line_does_not_evict(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.insert(0, LineState.SHARED)
        cache.insert(1, LineState.SHARED)
        assert cache.insert(0, LineState.MODIFIED) is None
        assert cache.lookup(0) is LineState.MODIFIED

    def test_sets_are_independent(self):
        cache = tiny_cache(ways=1, sets=2)
        cache.insert(0, LineState.SHARED)  # set 0
        cache.insert(1, LineState.SHARED)  # set 1
        assert cache.lookup(0) is not None
        assert cache.lookup(1) is not None

    def test_invalidate(self):
        cache = tiny_cache()
        cache.insert(4, LineState.MODIFIED)
        assert cache.invalidate(4) is LineState.MODIFIED
        assert cache.invalidate(4) is None
        assert cache.lookup(4) is None

    def test_touch_absent_line_rejected(self):
        with pytest.raises(ProtocolError):
            tiny_cache().touch(7)

    def test_set_state_absent_line_rejected(self):
        with pytest.raises(ProtocolError):
            tiny_cache().set_state(7, LineState.SHARED)

    def test_insert_requires_line_state(self):
        with pytest.raises(ConfigError):
            tiny_cache().insert(0, "M")

    def test_dirty_lines(self):
        cache = tiny_cache(ways=4, sets=1)
        cache.insert(0, LineState.MODIFIED)
        cache.insert(1, LineState.SHARED)
        cache.insert(2, LineState.MODIFIED)
        assert sorted(cache.dirty_lines()) == [0, 2]

    def test_clear(self):
        cache = tiny_cache()
        cache.insert(0, LineState.SHARED)
        cache.clear()
        assert cache.occupancy() == 0

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=100))
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = tiny_cache(ways=2, sets=4)
        for line in lines:
            cache.insert(line, LineState.SHARED)
        assert cache.occupancy() <= 8
        # Every set obeys its way limit (untouched sets stay unallocated).
        for cache_set in cache._sets:
            assert cache_set is None or len(cache_set) <= 2

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    def test_most_recent_insert_always_resident(self, lines):
        cache = tiny_cache(ways=2, sets=2)
        for line in lines:
            cache.insert(line, LineState.SHARED)
            assert cache.lookup(line) is LineState.SHARED


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(MachineConfig(n_nodes=4), node_id=0)

    def test_l1_hit_latency(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.SHARED)
        latency, state = hierarchy.lookup(0)
        assert latency == 2
        assert state is LineState.SHARED

    def test_l2_hit_latency_after_l1_eviction(self):
        hierarchy = self._hierarchy()
        n_l1_sets = hierarchy.config.l1.n_sets
        # Fill one L1 set past its 2 ways so the first line falls to L2.
        for way in range(3):
            hierarchy.fill(way * n_l1_sets, LineState.SHARED)
        latency, state = hierarchy.lookup(0)
        assert state is LineState.SHARED
        assert latency == 2 + 12

    def test_full_miss_charges_both_lookups(self):
        latency, state = self._hierarchy().lookup(12345)
        assert state is None
        assert latency == 14

    def test_inclusion_l2_eviction_purges_l1(self):
        hierarchy = self._hierarchy()
        n_l2_sets = hierarchy.config.l2.n_sets
        lines = [way * n_l2_sets for way in range(9)]  # 8-way L2 set
        for line in lines:
            hierarchy.fill(line, LineState.SHARED)
        # The LRU line (lines[0]) left both levels.
        assert hierarchy.state(lines[0]) is None
        assert hierarchy.l1.lookup(lines[0]) is None

    def test_dirty_victim_reported_for_writeback(self):
        hierarchy = self._hierarchy()
        n_l2_sets = hierarchy.config.l2.n_sets
        hierarchy.fill(0, LineState.MODIFIED)
        victims = []
        for way in range(1, 9):
            victims += hierarchy.fill(way * n_l2_sets, LineState.SHARED)
        assert victims == [0]

    def test_set_state_propagates_to_both_levels(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        hierarchy.set_state(0, LineState.SHARED)
        assert hierarchy.l1.lookup(0) is LineState.SHARED
        assert hierarchy.l2.lookup(0) is LineState.SHARED

    def test_invalidate_returns_l2_state(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        assert hierarchy.invalidate(0) is LineState.MODIFIED
        assert hierarchy.state(0) is None

    def test_dirty_lines_authoritative_at_l2(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        hierarchy.fill(1, LineState.SHARED)
        assert hierarchy.dirty_lines() == [0]

    def test_drop_all(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        hierarchy.drop_all()
        assert hierarchy.state(0) is None
        assert hierarchy.dirty_lines() == []


# ----------------------------------------------------------------------
# Part 2: the on-disk experiment result cache (repro.experiments.cache).


def _key_for(machine, **kwargs):
    params = dict(app="fmm", config="thrifty", threads=64, seed=1)
    params.update(kwargs)
    return content_key(
        params["app"], params["config"], params["threads"],
        params["seed"], machine, params.get("overrides"),
    )


#: Scalar MachineConfig fields safe to perturb by an arbitrary delta.
_INT_FIELDS = (
    "cpu_freq_mhz", "memory_row_miss_ns", "bus_freq_mhz",
    "bus_width_bytes", "page_bytes", "flush_base_ns",
    "flush_per_line_ns", "refill_per_line_ns",
)


class TestContentKey:
    def test_equal_inputs_equal_keys(self):
        assert _key_for(MachineConfig()) == _key_for(MachineConfig())

    def test_override_order_is_irrelevant(self):
        machine = MachineConfig()
        a = _key_for(machine, overrides={"x": 1, "y": 2})
        b = _key_for(machine, overrides={"y": 2, "x": 1})
        assert a == b

    @given(
        field=st.sampled_from(_INT_FIELDS),
        delta=st.integers(min_value=1, max_value=10_000),
    )
    def test_any_int_field_perturbation_changes_key(self, field, delta):
        base = MachineConfig()
        perturbed = dataclasses.replace(
            base, **{field: getattr(base, field) + delta}
        )
        assert _key_for(perturbed) != _key_for(base)

    @given(exponent=st.integers(min_value=1, max_value=8))
    def test_node_count_changes_key(self, exponent):
        base = MachineConfig()
        machine = dataclasses.replace(base, n_nodes=2 ** exponent)
        if machine.n_nodes == base.n_nodes:
            assert _key_for(machine) == _key_for(base)
        else:
            assert _key_for(machine) != _key_for(base)

    def test_nested_field_perturbation_changes_key(self):
        base = MachineConfig()
        slower_l1 = dataclasses.replace(
            base, l1=dataclasses.replace(base.l1, round_trip_ns=3)
        )
        assert _key_for(slower_l1) != _key_for(base)
        contended = dataclasses.replace(
            base,
            network=dataclasses.replace(base.network, model_contention=True),
        )
        assert _key_for(contended) != _key_for(base)

    def test_bool_flip_changes_key(self):
        base = MachineConfig()
        fast = dataclasses.replace(base, detailed_memory=False)
        assert _key_for(fast) != _key_for(base)

    @pytest.mark.parametrize("field,value", [
        ("app", "ocean"), ("config", "baseline"),
        ("threads", 32), ("seed", 2),
    ])
    def test_cell_identity_fields_change_key(self, field, value):
        machine = MachineConfig()
        assert _key_for(machine, **{field: value}) != _key_for(machine)

    def test_package_version_changes_key(self, monkeypatch):
        machine = MachineConfig()
        before = _key_for(machine)
        monkeypatch.setattr(
            "repro.experiments.cache.__version__", "999.0.0"
        )
        assert _key_for(machine) != before

    def test_unhashable_garbage_rejected(self):
        with pytest.raises(ConfigError):
            content_key(
                "fmm", "thrifty", 64, 1, MachineConfig(),
                {"factory": object()},
            )


class TestResultCacheStore:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        assert cache.get(key) is None
        assert cache.misses == 1
        payload = {"energy": 1.25, "stats": {"sleeps": 3}}
        cache.put(key, payload)
        assert key in cache
        assert cache.get(key) == payload
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        cache.put(key, ["good"])
        path = cache._entry_path(key)
        path.write_bytes(b"\x00not a pickle at all")
        sentinel = object()
        assert cache.get(key, sentinel) is sentinel
        assert cache.errors == 1
        assert not path.exists()  # bad entry evicted

    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        cache.put(key, list(range(1000)))
        path = cache._entry_path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert cache.errors == 1

    # No deadline: adversarial bytes can hit a pickle GLOBAL opcode,
    # and resolving one imports a module — a first import costs
    # whatever it costs, which is exactly what get() must survive.
    @settings(deadline=None)
    @given(blob=st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash_get(self, blob, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("fuzz"))
        key = _key_for(MachineConfig())
        path = cache._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        got = cache.get(key, "default")
        # Either the bytes happened to unpickle, or it's a clean miss.
        assert cache.hits + cache.misses == 1

    def test_overwrite_is_atomic_and_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        cache.put(key, "old")
        cache.put(key, "new")
        assert cache.get(key) == "new"
        assert len(cache) == 1
        leftovers = [p for p in os.listdir(path=cache._entry_path(key).parent)
                     if p.endswith(".tmp")]
        assert leftovers == []

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(4):
            cache.put(_key_for(MachineConfig(), seed=seed), seed)
        assert len(cache) == 4
        cache.clear()
        assert len(cache) == 0

    def test_stale_tmp_never_shadows_a_good_entry(self, tmp_path):
        # A writer killed mid-put leaves a .tmp file behind; it must be
        # invisible to readers and must not corrupt the real entry.
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        cache.put(key, "good")
        torn = cache._entry_path(key).parent / "deadbeef.tmp"
        torn.write_bytes(b"\x00half a pickle")
        assert cache.get(key) == "good"
        assert cache.errors == 0
        assert len(cache) == 1  # the torn tmp is not an entry

    def test_clear_sweeps_stale_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        cache.put(key, "entry")
        torn = cache._entry_path(key).parent / "leftover.tmp"
        torn.write_bytes(b"partial")
        cache.clear()
        assert len(cache) == 0
        assert not torn.exists()

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [_key_for(MachineConfig(), seed=seed) for seed in range(4)]
        for age, key in enumerate(keys):
            cache.put(key, age)
            os.utime(cache._entry_path(key), (1000 + age, 1000 + age))
        assert cache.prune(max_entries=2) == 2
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache
        with pytest.raises(ConfigError):
            cache.prune(max_entries=-1)

    def test_stats_dict(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("0" * 64)
        assert cache.stats() == {
            "hits": 0, "misses": 1, "stores": 0, "errors": 0,
            "migrations": 0, "write_errors": 0,
        }


class TestLegacyFlatLayout:
    """The pre-shard flat layout stays readable and migrates away."""

    def _plant_flat(self, cache, key, value):
        import pickle

        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache._legacy_path(key).write_bytes(pickle.dumps(value))

    def test_flat_entry_is_a_hit_and_migrates(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        self._plant_flat(cache, key, "legacy")
        assert cache.layout() == {"sharded": 0, "flat": 1}
        assert cache.get(key) == "legacy"
        assert cache.hits == 1
        assert cache.migrations == 1
        # The entry now lives in its shard; the flat copy is gone.
        assert cache.layout() == {"sharded": 1, "flat": 0}
        assert cache._entry_path(key).exists()
        assert not cache._legacy_path(key).exists()
        assert cache.get(key) == "legacy"

    def test_contains_and_len_see_flat_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        self._plant_flat(cache, key, 1)
        assert key in cache
        assert len(cache) == 1

    def test_bulk_migrate(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [_key_for(MachineConfig(), seed=seed) for seed in range(3)]
        for index, key in enumerate(keys):
            self._plant_flat(cache, key, index)
        assert cache.migrate() == 3
        assert cache.layout() == {"sharded": 3, "flat": 0}
        for index, key in enumerate(keys):
            assert cache.get(key) == index
        assert cache.migrate() == 0  # idempotent

    def test_corrupt_flat_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache._legacy_path(key).write_bytes(b"\x00torn legacy")
        assert cache.get(key) is None
        assert cache.errors == 1
        assert not cache._legacy_path(key).exists()

    def test_put_prefers_shard_over_stale_flat(self, tmp_path):
        # After an overwrite, the sharded copy is authoritative even if
        # a stale flat copy survives (shard is probed first).
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig())
        self._plant_flat(cache, key, "old")
        cache.put(key, "new")
        assert cache.get(key) == "new"

    def test_clear_and_prune_cover_both_layouts(self, tmp_path):
        cache = ResultCache(tmp_path)
        flat_key = _key_for(MachineConfig(), seed=1)
        shard_key = _key_for(MachineConfig(), seed=2)
        self._plant_flat(cache, flat_key, "flat")
        cache.put(shard_key, "shard")
        assert len(cache) == 2
        assert cache.prune(max_entries=2) == 0
        cache.clear()
        assert len(cache) == 0


class TestCoercionAndLocation:
    def test_coerce_none_and_passthrough(self, tmp_path):
        assert ResultCache.coerce(None) is None
        cache = ResultCache(tmp_path)
        assert ResultCache.coerce(cache) is cache

    def test_coerce_path_and_true(self, tmp_path, monkeypatch):
        assert ResultCache.coerce(str(tmp_path)).cache_dir == tmp_path
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert ResultCache.coerce(True).cache_dir == tmp_path / "env"

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ConfigError):
            ResultCache.coerce(3.5)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert default_cache_dir() == tmp_path
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert default_cache_dir().name == "repro-thrifty"


class TestCachedExperimentResults:
    def test_real_result_survives_the_disk_round_trip(self, tmp_path):
        from repro.experiments.runner import run_experiment

        result = run_experiment("fmm", "thrifty", threads=4, seed=1)
        cache = ResultCache(tmp_path)
        key = _key_for(MachineConfig(n_nodes=4), threads=4)
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded.identical(result)
        assert loaded.thrifty_stats == result.thrifty_stats
