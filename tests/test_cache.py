"""Unit tests for cache arrays and the L1/L2 hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig
from repro.coherence.cache import Cache, CacheHierarchy, LineState
from repro.errors import ConfigError, ProtocolError


def tiny_cache(ways=2, sets=2):
    config = CacheConfig(
        size_bytes=64 * ways * sets, line_bytes=64, ways=ways,
        round_trip_ns=2, freq_mhz=1000,
    )
    return Cache(config, name="tiny")


class TestCache:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.lookup(0) is None
        cache.insert(0, LineState.SHARED)
        assert cache.lookup(0) is LineState.SHARED

    def test_lru_eviction_within_set(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.insert(0, LineState.SHARED)
        cache.insert(1, LineState.SHARED)
        cache.touch(0)  # 1 becomes LRU
        evicted = cache.insert(2, LineState.SHARED)
        assert evicted == (1, LineState.SHARED)
        assert cache.lookup(0) is not None

    def test_insert_existing_line_does_not_evict(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.insert(0, LineState.SHARED)
        cache.insert(1, LineState.SHARED)
        assert cache.insert(0, LineState.MODIFIED) is None
        assert cache.lookup(0) is LineState.MODIFIED

    def test_sets_are_independent(self):
        cache = tiny_cache(ways=1, sets=2)
        cache.insert(0, LineState.SHARED)  # set 0
        cache.insert(1, LineState.SHARED)  # set 1
        assert cache.lookup(0) is not None
        assert cache.lookup(1) is not None

    def test_invalidate(self):
        cache = tiny_cache()
        cache.insert(4, LineState.MODIFIED)
        assert cache.invalidate(4) is LineState.MODIFIED
        assert cache.invalidate(4) is None
        assert cache.lookup(4) is None

    def test_touch_absent_line_rejected(self):
        with pytest.raises(ProtocolError):
            tiny_cache().touch(7)

    def test_set_state_absent_line_rejected(self):
        with pytest.raises(ProtocolError):
            tiny_cache().set_state(7, LineState.SHARED)

    def test_insert_requires_line_state(self):
        with pytest.raises(ConfigError):
            tiny_cache().insert(0, "M")

    def test_dirty_lines(self):
        cache = tiny_cache(ways=4, sets=1)
        cache.insert(0, LineState.MODIFIED)
        cache.insert(1, LineState.SHARED)
        cache.insert(2, LineState.MODIFIED)
        assert sorted(cache.dirty_lines()) == [0, 2]

    def test_clear(self):
        cache = tiny_cache()
        cache.insert(0, LineState.SHARED)
        cache.clear()
        assert cache.occupancy() == 0

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=100))
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = tiny_cache(ways=2, sets=4)
        for line in lines:
            cache.insert(line, LineState.SHARED)
        assert cache.occupancy() <= 8
        # Every set obeys its way limit.
        for cache_set in cache._sets:
            assert len(cache_set) <= 2

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    def test_most_recent_insert_always_resident(self, lines):
        cache = tiny_cache(ways=2, sets=2)
        for line in lines:
            cache.insert(line, LineState.SHARED)
            assert cache.lookup(line) is LineState.SHARED


class TestCacheHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(MachineConfig(n_nodes=4), node_id=0)

    def test_l1_hit_latency(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.SHARED)
        latency, state = hierarchy.lookup(0)
        assert latency == 2
        assert state is LineState.SHARED

    def test_l2_hit_latency_after_l1_eviction(self):
        hierarchy = self._hierarchy()
        n_l1_sets = hierarchy.config.l1.n_sets
        # Fill one L1 set past its 2 ways so the first line falls to L2.
        for way in range(3):
            hierarchy.fill(way * n_l1_sets, LineState.SHARED)
        latency, state = hierarchy.lookup(0)
        assert state is LineState.SHARED
        assert latency == 2 + 12

    def test_full_miss_charges_both_lookups(self):
        latency, state = self._hierarchy().lookup(12345)
        assert state is None
        assert latency == 14

    def test_inclusion_l2_eviction_purges_l1(self):
        hierarchy = self._hierarchy()
        n_l2_sets = hierarchy.config.l2.n_sets
        lines = [way * n_l2_sets for way in range(9)]  # 8-way L2 set
        for line in lines:
            hierarchy.fill(line, LineState.SHARED)
        # The LRU line (lines[0]) left both levels.
        assert hierarchy.state(lines[0]) is None
        assert hierarchy.l1.lookup(lines[0]) is None

    def test_dirty_victim_reported_for_writeback(self):
        hierarchy = self._hierarchy()
        n_l2_sets = hierarchy.config.l2.n_sets
        hierarchy.fill(0, LineState.MODIFIED)
        victims = []
        for way in range(1, 9):
            victims += hierarchy.fill(way * n_l2_sets, LineState.SHARED)
        assert victims == [0]

    def test_set_state_propagates_to_both_levels(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        hierarchy.set_state(0, LineState.SHARED)
        assert hierarchy.l1.lookup(0) is LineState.SHARED
        assert hierarchy.l2.lookup(0) is LineState.SHARED

    def test_invalidate_returns_l2_state(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        assert hierarchy.invalidate(0) is LineState.MODIFIED
        assert hierarchy.state(0) is None

    def test_dirty_lines_authoritative_at_l2(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        hierarchy.fill(1, LineState.SHARED)
        assert hierarchy.dirty_lines() == [0]

    def test_drop_all(self):
        hierarchy = self._hierarchy()
        hierarchy.fill(0, LineState.MODIFIED)
        hierarchy.drop_all()
        assert hierarchy.state(0) is None
        assert hierarchy.dirty_lines() == []
