"""Unit tests for the durable run journal (crash-safe campaigns).

Covers the atomic-write helpers, spec hashing, journal lifecycle
(create / open / verify), the fsynced record stream and its torn-tail-
tolerant replay, checkpoint snapshots, and the payload store.
"""

import json
import os

import pytest

from repro.errors import ConfigError
from repro.experiments.journal import (
    JOURNAL_DIR_ENV,
    RECORD_KINDS,
    RunJournal,
    atomic_write_bytes,
    atomic_write_text,
    default_journal_root,
    run_id_for,
    spec_hash,
)

SPEC = {"kind": "test", "apps": ["fmm"], "seed": 1}


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "file.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_replace_leaves_no_tmp_files(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_failed_write_preserves_old_content(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "good")
        with pytest.raises(TypeError):
            atomic_write_bytes(path, object())  # not bytes
        assert path.read_text() == "good"
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


class TestSpecHash:
    def test_key_order_is_irrelevant(self):
        assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})

    def test_any_field_change_changes_hash(self):
        assert spec_hash(SPEC) != spec_hash(dict(SPEC, seed=2))

    def test_run_id_for_is_short_and_stable(self):
        assert run_id_for(SPEC) == run_id_for(dict(SPEC))
        assert run_id_for(SPEC).startswith("run-")
        assert len(run_id_for(SPEC)) == 4 + 12


class TestLifecycle:
    def test_create_then_open(self, tmp_path):
        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        assert journal.exists()
        again = RunJournal.open("r1", root=tmp_path)
        assert again.spec()["spec_hash"] == spec_hash(SPEC)

    def test_create_refuses_to_clobber(self, tmp_path):
        RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        with pytest.raises(ConfigError):
            RunJournal.create(SPEC, run_id="r1", root=tmp_path)

    def test_open_requires_existing(self, tmp_path):
        with pytest.raises(ConfigError):
            RunJournal.open("missing", root=tmp_path)

    def test_default_run_id_from_spec(self, tmp_path):
        journal = RunJournal.create(SPEC, root=tmp_path)
        assert journal.run_id == run_id_for(SPEC)

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden", "x" * 65, "a b"])
    def test_bad_run_ids_rejected(self, bad):
        with pytest.raises(ConfigError):
            RunJournal(bad)

    def test_verify_spec_accepts_same_campaign(self, tmp_path):
        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        assert journal.verify_spec(dict(SPEC)) == SPEC

    def test_verify_spec_rejects_different_campaign(self, tmp_path):
        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        with pytest.raises(ConfigError):
            journal.verify_spec(dict(SPEC, seed=99))

    def test_default_root_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(JOURNAL_DIR_ENV, str(tmp_path / "env"))
        assert default_journal_root() == tmp_path / "env"
        monkeypatch.delenv(JOURNAL_DIR_ENV)
        assert default_journal_root().name == "runs"


class TestRecordStream:
    def _journal(self, tmp_path):
        return RunJournal.create(SPEC, run_id="r1", root=tmp_path)

    def test_unknown_record_kind_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            self._journal(tmp_path).append("exploded")

    def test_records_are_one_json_line_each(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_dispatched("fmm/thrifty#0", index=0)
        journal.record_completed("fmm/thrifty#0", index=0)
        lines = (journal.run_dir / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 2
        bodies = [json.loads(line) for line in lines]
        assert [b["record"] for b in bodies] == ["dispatched", "completed"]
        assert [b["seq"] for b in bodies] == [1, 2]
        assert all(b["record"] in RECORD_KINDS for b in bodies)

    def test_replay_reconstructs_completed_set(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_dispatched("a", index=0)
        journal.record_completed("a", index=0, key="k0")
        journal.record_dispatched("b", index=1)
        journal.record_failed("b", index=1, kind="timeout", attempt=1)
        journal.record_failed_permanent(
            "b", index=1, kind="timeout", attempts=2,
            retry_delays=[0.03],
        )
        journal.record_finished(completed=1, failed=1)
        state = RunJournal.open("r1", root=tmp_path).replay()
        assert state.completed_ids == {"a"}
        assert state.completed["a"]["key"] == "k0"
        assert set(state.failed_permanent) == {"b"}
        assert state.failed_permanent["b"]["retry_delays"] == [0.03]
        assert state.dispatches == 2
        assert state.finished
        assert not state.torn_tail

    def test_later_completion_clears_permanent_failure(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_failed_permanent("a", attempts=3)
        journal.record_completed("a")
        state = journal.replay()
        assert state.completed_ids == {"a"}
        assert state.failed_permanent == {}

    def test_replay_tolerates_torn_tail(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_completed("a")
        journal.record_completed("b")
        path = journal.run_dir / "journal.jsonl"
        # Simulate a crash mid-append: the final line is truncated.
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])
        state = RunJournal.open("r1", root=tmp_path).replay()
        assert state.completed_ids == {"a"}
        assert state.torn_tail

    def test_replay_restores_sequence_counter(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_completed("a")
        journal.record_completed("b")
        reopened = RunJournal.open("r1", root=tmp_path)
        reopened.replay()
        reopened.record_resumed(completed=2, remaining=0)
        lines = (journal.run_dir / "journal.jsonl").read_text().splitlines()
        assert json.loads(lines[-1])["seq"] == 3

    def test_replay_of_empty_journal(self, tmp_path):
        state = self._journal(tmp_path).replay()
        assert state.completed == {}
        assert state.spec == SPEC
        assert state.spec_hash == spec_hash(SPEC)

    def test_lifecycle_counters(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record_worker_stalled(4321, ["a"], 1.5)
        journal.record_interrupted("SIGTERM", completed=1, total=5)
        journal.record_resumed(completed=1, remaining=4)
        state = journal.replay()
        assert (state.stalls, state.interruptions, state.resumes) == (1, 1, 1)


class TestCheckpoint:
    def test_checkpoint_round_trip(self, tmp_path):
        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        assert journal.read_checkpoint() is None
        journal.checkpoint(completed=3, total=10)
        snapshot = journal.read_checkpoint()
        assert snapshot == {"run_id": "r1", "completed": 3, "total": 10}
        assert journal.replay().checkpoints == 1

    def test_checkpoint_emits_telemetry_event(self, tmp_path):
        from repro.telemetry.events import CheckpointWritten
        from repro.telemetry.tracer import Tracer

        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        tracer = Tracer()
        journal.checkpoint(completed=1, total=2, tracer=tracer)
        events = [
            e for e in tracer.events if isinstance(e, CheckpointWritten)
        ]
        assert len(events) == 1
        assert events[0].run_id == "r1"
        assert (events[0].completed, events[0].total) == (1, 2)


class TestPayloadStore:
    def test_round_trip(self, tmp_path):
        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        journal.store_payload("fmm/thrifty/plan0", {"energy": 1.5})
        assert journal.load_payload("fmm/thrifty/plan0") == {"energy": 1.5}
        assert journal.load_payload("missing") is None

    def test_corrupted_payload_is_a_miss(self, tmp_path):
        journal = RunJournal.create(SPEC, run_id="r1", root=tmp_path)
        journal.store_payload("cell", ["good"])
        path = journal._payload_path("cell")
        path.write_bytes(b"\x00garbage")
        with pytest.warns(RuntimeWarning, match="corrupt payload"):
            assert journal.load_payload("cell", "fallback") == "fallback"
        assert journal.corrupt_reads == 1  # counted, not swallowed
        assert not path.exists()  # evicted, so a re-run can re-store
