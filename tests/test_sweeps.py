"""Tests for the scaling-sweep utilities."""

import pytest

from repro.config import DEFAULT_SLEEP_STATES
from repro.errors import ConfigError
from repro.experiments.sweeps import (
    latency_scaling,
    scaled_states,
    thread_scaling,
)


class TestScaledStates:
    def test_latencies_scaled(self):
        halved = scaled_states(DEFAULT_SLEEP_STATES, 0.5)
        assert [s.transition_latency_ns for s in halved] == [
            5_000, 7_500, 17_500,
        ]

    def test_power_savings_untouched(self):
        scaled = scaled_states(DEFAULT_SLEEP_STATES, 2.0)
        assert [s.power_savings for s in scaled] == [
            s.power_savings for s in DEFAULT_SLEEP_STATES
        ]

    def test_never_below_one_ns(self):
        tiny = scaled_states(DEFAULT_SLEEP_STATES, 1e-9)
        assert all(s.transition_latency_ns >= 1 for s in tiny)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError):
            scaled_states(DEFAULT_SLEEP_STATES, 0)


class TestThreadScaling:
    def test_points_cover_requested_sizes(self):
        points = thread_scaling("radiosity", thread_counts=(4, 8))
        assert [p.threads for p in points] == [4, 8]
        for point in points:
            assert point.app == "radiosity"
            assert 0 <= point.imbalance < 1
            assert point.ideal_energy_savings >= 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            thread_scaling("fmm", thread_counts=(6,))

    def test_savings_grow_with_threads_for_straggler_app(self):
        points = thread_scaling("fmm", thread_counts=(4, 16))
        assert points[1].imbalance > points[0].imbalance


class TestLatencyScaling:
    def test_rows_for_each_factor(self):
        rows = latency_scaling("fmm", factors=(0.5, 1.0), threads=8)
        assert [row[0] for row in rows] == [0.5, 1.0]
        for _factor, savings, slow in rows:
            assert -0.05 < savings < 1
            assert slow < 0.1

    def test_faster_transitions_do_not_hurt(self):
        rows = latency_scaling("fmm", factors=(0.25, 2.0), threads=8)
        by_factor = {factor: savings for factor, savings, _ in rows}
        assert by_factor[0.25] >= by_factor[2.0] - 0.01
