"""Tests for the queued test-and-set spinlock."""

import pytest

from repro.errors import SimulationError
from repro.sync import SpinLock

from tests.conftest import make_system


def test_uncontended_acquire_release():
    system = make_system()
    lock = SpinLock(system)

    def program(node):
        yield from lock.acquire(node)
        assert lock.held
        yield from lock.release(node)

    system.run_threads(program, n_threads=1)
    assert not lock.held
    assert lock.stats_acquisitions == 1
    assert lock.stats_contended == 0


def test_mutual_exclusion_under_contention():
    system = make_system()
    lock = SpinLock(system)
    inside = []
    max_inside = []

    def program(node):
        for _ in range(3):
            yield from lock.acquire(node)
            inside.append(node.node_id)
            max_inside.append(len(inside))
            yield from node.cpu.compute(1_000)
            inside.remove(node.node_id)
            yield from lock.release(node)

    system.run_threads(program)
    assert max(max_inside) == 1
    assert lock.stats_acquisitions == 12


def test_fifo_handoff_order():
    system = make_system()
    lock = SpinLock(system)
    order = []

    def program(node):
        # Stagger arrivals so the queue order is deterministic.
        yield from node.cpu.compute(100 * (node.node_id + 1))
        yield from lock.acquire(node)
        order.append(node.node_id)
        yield from node.cpu.compute(10_000)
        yield from lock.release(node)

    system.run_threads(program)
    assert order == [0, 1, 2, 3]


def test_release_by_non_holder_rejected():
    system = make_system()
    lock = SpinLock(system)

    def bad(node):
        yield from lock.acquire(node)
        lock._holder = 99  # simulate corruption
        yield from lock.release(node)

    with pytest.raises(SimulationError):
        system.run_threads(bad, n_threads=1)


def test_lock_word_goes_through_memory_system():
    system = make_system()
    lock = SpinLock(system)

    def program(node):
        yield from lock.acquire(node)
        yield from lock.release(node)

    rmws_before = system.memsys.stats.rmws
    system.run_threads(program, n_threads=2)
    assert system.memsys.stats.rmws > rmws_before
    assert system.memsys.peek(lock.addr) == 0
