"""Seed plumbing: every entry point accepts and forwards ``seed``.

Two same-seed runs of any entry point must be identical; two
different-seed runs must differ. This pins the audit of
``runner.py``/``sweeps.py``/``cli.py`` and the new engine paths — a
dropped ``seed`` anywhere in the chain shows up here as a same-seed
mismatch or a different-seed coincidence.
"""

import pytest

from repro.experiments.figures import figure3_rows
from repro.experiments.parallel import ExperimentEngine
from repro.experiments.runner import (
    DEFAULT_SEED,
    run_app,
    run_experiment,
    run_matrix,
)
from repro.experiments.sweeps import latency_scaling, thread_scaling
from repro.experiments.tables import table2_rows

APP = "fmm"
THREADS = 8


class TestRunnerSeeds:
    def test_same_seed_runs_identical(self):
        one = run_experiment(APP, "thrifty", threads=THREADS, seed=7)
        two = run_experiment(APP, "thrifty", threads=THREADS, seed=7)
        assert one.identical(two)

    def test_different_seeds_differ(self):
        one = run_experiment(APP, "baseline", threads=THREADS, seed=1)
        two = run_experiment(APP, "baseline", threads=THREADS, seed=2)
        assert not one.identical(two)

    def test_default_seed_is_explicit_default(self):
        defaulted = run_experiment(APP, "baseline", threads=THREADS)
        explicit = run_experiment(
            APP, "baseline", threads=THREADS, seed=DEFAULT_SEED
        )
        assert defaulted.identical(explicit)

    def test_run_app_forwards_seed_to_every_config(self):
        configs = ("baseline", "thrifty", "ideal")
        by_app = run_app(APP, threads=THREADS, seed=5, configs=configs)
        for config in configs:
            direct = run_experiment(APP, config, threads=THREADS, seed=5)
            assert by_app[config].identical(direct)


class TestEngineSeeds:
    def test_engine_matrix_forwards_seed(self):
        engine = ExperimentEngine(workers=2, strict=True)
        via_engine = engine.run_matrix(
            (APP,), configs=("baseline",), threads=THREADS, seed=9
        )
        direct = run_experiment(APP, "baseline", threads=THREADS, seed=9)
        assert via_engine[APP]["baseline"].identical(direct)

    def test_run_matrix_seed_reaches_workers(self):
        serial = run_matrix(
            apps=(APP,), configs=("baseline",), threads=THREADS,
            seed=3, workers=1,
        )
        parallel = run_matrix(
            apps=(APP,), configs=("baseline",), threads=THREADS,
            seed=3, workers=2,
        )
        assert serial[APP]["baseline"].identical(parallel[APP]["baseline"])


class TestSweepSeeds:
    def test_thread_scaling_seeded(self):
        kwargs = dict(thread_counts=(4, 8))
        assert thread_scaling(APP, seed=1, **kwargs) == thread_scaling(
            APP, seed=1, **kwargs
        )
        assert thread_scaling(APP, seed=1, **kwargs) != thread_scaling(
            APP, seed=2, **kwargs
        )

    def test_latency_scaling_seeded(self):
        kwargs = dict(factors=(0.5,), threads=THREADS)
        assert latency_scaling(APP, seed=1, **kwargs) == latency_scaling(
            APP, seed=1, **kwargs
        )
        assert latency_scaling(APP, seed=1, **kwargs) != latency_scaling(
            APP, seed=2, **kwargs
        )


class TestReportSeeds:
    def test_table2_seeded(self):
        kwargs = dict(threads=THREADS, apps=(APP,))
        assert table2_rows(seed=1, **kwargs) == table2_rows(seed=1, **kwargs)
        assert table2_rows(seed=1, **kwargs) != table2_rows(seed=2, **kwargs)

    def test_figure3_seeded(self):
        assert figure3_rows(threads=THREADS, seed=1) == figure3_rows(
            threads=THREADS, seed=1
        )
        assert figure3_rows(threads=THREADS, seed=1) != figure3_rows(
            threads=THREADS, seed=2
        )


class TestCliSeeds:
    @pytest.mark.parametrize("seed", [1, 42])
    def test_cli_forwards_seed_workers_and_cache(self, monkeypatch, seed,
                                                 tmp_path, capsys):
        from repro import cli

        captured = {}
        real_run_matrix = cli.run_matrix

        def spy(**kwargs):
            captured.update(kwargs)
            return real_run_matrix(**kwargs)

        monkeypatch.setattr(cli, "run_matrix", spy)
        assert cli.main([
            "headline", "--apps", APP, "--threads", str(THREADS),
            "--seed", str(seed), "--workers", "2",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert captured["seed"] == seed
        assert captured["workers"] == 2
        assert captured["cache"] == str(tmp_path)
        capsys.readouterr()

    def test_cli_no_cache_disables_cache(self, monkeypatch, capsys):
        from repro import cli

        captured = {}
        real_run_matrix = cli.run_matrix

        def spy(**kwargs):
            captured.update(kwargs)
            return real_run_matrix(**kwargs)

        monkeypatch.setattr(cli, "run_matrix", spy)
        assert cli.main([
            "headline", "--apps", APP, "--threads", str(THREADS),
            "--no-cache",
        ]) == 0
        assert captured["cache"] is None
        assert captured["seed"] == DEFAULT_SEED
        capsys.readouterr()
