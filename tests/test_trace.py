"""Direct tests for the barrier trace records.

``SleepRecord`` lives in :mod:`repro.telemetry.events` since its
promotion into the telemetry event model; :mod:`repro.sync.trace` keeps
a backward-compatible alias these tests pin.
"""

from repro.sync.trace import BarrierTrace, InstanceRecord, SleepRecord


class TestSleepRecordAlias:
    def test_alias_is_same_class_object(self):
        import repro.sync.trace
        import repro.telemetry.events

        assert repro.sync.trace.SleepRecord is repro.telemetry.events.SleepRecord

    def test_in_sync_trace_all(self):
        import repro.sync.trace

        assert "SleepRecord" in repro.sync.trace.__all__


class TestSleepRecord:
    def test_fields(self):
        record = SleepRecord(
            state_name="Sleep3", resident_ns=1200, flushed_lines=40,
            woke_by="timer",
        )
        assert record.state_name == "Sleep3"
        assert record.resident_ns == 1200
        assert record.flushed_lines == 40
        assert record.woke_by == "timer"
        assert record.penalty_ns == 0  # default

    def test_penalty_is_mutable(self):
        record = SleepRecord("Sleep2", 10, 0, "invalidation")
        record.penalty_ns = 55
        assert record.penalty_ns == 55

    def test_equality(self):
        a = SleepRecord("Sleep1 (Halt)", 5, 0, "timer", penalty_ns=3)
        b = SleepRecord("Sleep1 (Halt)", 5, 0, "timer", penalty_ns=3)
        assert a == b
        assert a != SleepRecord("Sleep1 (Halt)", 5, 0, "invalidation", 3)


class TestInstanceRecord:
    def test_stall_ns_before_release_is_none(self):
        record = InstanceRecord(pc="b1", sequence=0)
        record.arrivals[0] = 100
        assert record.stall_ns(0) is None

    def test_stall_ns_after_release(self):
        record = InstanceRecord(pc="b1", sequence=0)
        record.arrivals = {0: 100, 1: 300}
        record.release_ts = 310
        assert record.stall_ns(0) == 210
        assert record.stall_ns(1) == 10
        assert record.stall_ns(7) is None  # never arrived
        assert record.stalls() == {0: 210, 1: 10}

    def test_stall_clamped_non_negative(self):
        record = InstanceRecord(pc="b1", sequence=0)
        record.arrivals = {0: 500}
        record.release_ts = 400
        assert record.stall_ns(0) == 0

    def test_imbalance_window(self):
        record = InstanceRecord(pc="b1", sequence=0)
        assert record.imbalance_window_ns == 0
        record.arrivals = {0: 100, 1: 250, 2: 180}
        assert record.imbalance_window_ns == 150

    def test_sleeps_hold_sleep_records(self):
        record = InstanceRecord(pc="b1", sequence=0)
        record.sleeps[3] = SleepRecord("Sleep3", 900, 12, "invalidation")
        assert record.sleeps[3].flushed_lines == 12


class TestBarrierTrace:
    def test_open_close_lifecycle(self):
        trace = BarrierTrace()
        record = trace.open_instance("b1")
        assert trace.current("b1") is record
        assert record.sequence == 0
        trace.close_instance("b1")
        assert trace.current("b1") is None
        assert trace.instances == [record]

    def test_sequence_is_global_across_pcs(self):
        trace = BarrierTrace()
        first = trace.open_instance("b1")
        second = trace.open_instance("b2")
        trace.close_instance("b1")
        third = trace.open_instance("b1")
        assert (first.sequence, second.sequence, third.sequence) == (0, 1, 2)

    def test_by_pc_in_dynamic_order(self):
        trace = BarrierTrace()
        a = trace.open_instance("b1")
        trace.open_instance("b2")
        trace.close_instance("b1")
        b = trace.open_instance("b1")
        assert trace.by_pc("b1") == [a, b]

    def test_total_stall_skips_unreleased(self):
        trace = BarrierTrace()
        released = trace.open_instance("b1")
        released.arrivals = {0: 0, 1: 40}
        released.release_ts = 50
        unreleased = trace.open_instance("b2")
        unreleased.arrivals = {0: 10}
        assert trace.total_stall_ns() == 50 + 10
        assert trace.released_instances() == [released]
