"""Tests for the message-passing environment (Sections 2 and 7)."""

import pytest

from repro.config import MachineConfig
from repro.energy.accounting import Category
from repro.errors import SimulationError
from repro.machine import System
from repro.mp import (
    MessageEndpoint,
    MpBarrier,
    ThriftyMpBarrier,
    make_endpoints,
)


def build(n_ranks=4):
    system = System(MachineConfig(n_nodes=n_ranks))
    return system, make_endpoints(system)


class TestEndpoint:
    def test_send_recv_payload(self):
        system, endpoints = build()
        received = []

        def sender():
            yield from endpoints[0].send(
                endpoints, 1, "tag", payload={"x": 7}
            )

        def receiver():
            payload = yield from endpoints[1].recv("tag")
            received.append((payload, system.sim.now))

        system.sim.spawn(sender())
        system.sim.spawn(receiver())
        system.sim.run()
        assert received[0][0] == {"x": 7}
        assert received[0][1] > 0  # wire + inject/extract latency

    def test_fifo_per_tag(self):
        system, endpoints = build()
        got = []

        def sender():
            for value in (1, 2, 3):
                yield from endpoints[0].send(
                    endpoints, 1, "tag", payload=value
                )

        def receiver():
            for _ in range(3):
                got.append((yield from endpoints[1].recv("tag")))

        system.sim.spawn(sender())
        system.sim.spawn(receiver())
        system.sim.run()
        assert got == [1, 2, 3]

    def test_tags_are_independent(self):
        system, endpoints = build()
        got = {}

        def sender():
            yield from endpoints[0].send(endpoints, 1, "a", payload="A")
            yield from endpoints[0].send(endpoints, 1, "b", payload="B")

        def receiver():
            got["b"] = yield from endpoints[1].recv("b")
            got["a"] = yield from endpoints[1].recv("a")

        system.sim.spawn(sender())
        system.sim.spawn(receiver())
        system.sim.run()
        assert got == {"a": "A", "b": "B"}

    def test_spin_recv_charges_spin_energy(self):
        system, endpoints = build()

        def sender():
            yield system.sim.timeout(500_000)
            yield from endpoints[0].send(endpoints, 1, "tag")

        def receiver():
            yield from endpoints[1].recv("tag", spin=True)

        system.sim.spawn(sender())
        system.sim.spawn(receiver())
        system.sim.run()
        spin = system.nodes[1].cpu.account.time_ns(Category.SPIN)
        assert spin == pytest.approx(500_000, rel=0.05)

    def test_nonspin_recv_charges_nothing_while_waiting(self):
        system, endpoints = build()

        def sender():
            yield system.sim.timeout(500_000)
            yield from endpoints[0].send(endpoints, 1, "tag")

        def receiver():
            yield from endpoints[1].recv("tag", spin=False)

        system.sim.spawn(sender())
        system.sim.spawn(receiver())
        system.sim.run()
        assert system.nodes[1].cpu.account.time_ns(Category.SPIN) == 0

    def test_interrupt_fires_on_arrival(self):
        system, endpoints = build()
        fired = []
        event = endpoints[1].arm_interrupt()
        event.add_callback(lambda ev: fired.append(system.sim.now))

        def sender():
            yield from endpoints[0].send(endpoints, 1, "tag")

        system.sim.spawn(sender())
        system.sim.run()
        assert len(fired) == 1

    def test_try_recv(self):
        system, endpoints = build()
        assert endpoints[0].try_recv("tag") == (False, None)

    def test_invalid_rank_rejected(self):
        system, _ = build()
        with pytest.raises(SimulationError):
            MessageEndpoint(system, 99)


def run_barrier_loop(system, barrier, schedules):
    for rank, phases in enumerate(schedules):
        def program(rank=rank, phases=phases):
            node = system.nodes[rank]
            for duration in phases:
                yield from node.cpu.compute(duration)
                yield from barrier.wait(rank)

        system.sim.spawn(program())
    system.run()


class TestMpBarrier:
    def test_synchronizes_all_ranks(self):
        system, endpoints = build()
        barrier = MpBarrier(system, endpoints)
        schedules = [[100_000 * (r + 1)] * 3 for r in range(4)]
        run_barrier_loop(system, barrier, schedules)
        assert barrier.stats.instances == 3
        # Every rank's release timestamp is at or after the slowest
        # rank's arrival each round.
        assert min(barrier._release_ts) > 3 * 100_000

    def test_fast_ranks_spin(self):
        system, endpoints = build()
        barrier = MpBarrier(system, endpoints)
        schedules = [[50_000] * 2, [50_000] * 2, [50_000] * 2,
                     [800_000] * 2]
        run_barrier_loop(system, barrier, schedules)
        spin = system.total_account().time_ns(Category.SPIN)
        assert spin > 3 * 2 * 600_000  # three fast ranks, two rounds


class TestThriftyMpBarrier:
    def _schedules(self, rounds=6):
        return [[100_000] * rounds, [100_000] * rounds,
                [100_000] * rounds, [900_000] * rounds]

    def test_semantically_equivalent(self):
        system, endpoints = build()
        barrier = ThriftyMpBarrier(system, endpoints)
        run_barrier_loop(system, barrier, self._schedules())
        assert barrier.stats.instances == 6

    def test_warm_ranks_sleep(self):
        system, endpoints = build()
        barrier = ThriftyMpBarrier(system, endpoints)
        run_barrier_loop(system, barrier, self._schedules())
        assert barrier.stats.sleeps > 0
        assert system.total_account().time_ns(Category.SLEEP) > 0

    def test_piggybacked_bit_trains_local_predictors(self):
        system, endpoints = build()
        barrier = ThriftyMpBarrier(system, endpoints)
        run_barrier_loop(system, barrier, self._schedules())
        for rank in range(1, 4):
            prediction = barrier.predictors[rank].peek("mp.tb")
            assert prediction is not None
            assert prediction == pytest.approx(900_000, rel=0.2)

    def test_saves_energy_versus_spinning_mp_barrier(self):
        spin_system, spin_endpoints = build()
        spin_barrier = MpBarrier(spin_system, spin_endpoints)
        run_barrier_loop(spin_system, spin_barrier, self._schedules())

        thrifty_system, thrifty_endpoints = build()
        thrifty_barrier = ThriftyMpBarrier(thrifty_system, thrifty_endpoints)
        run_barrier_loop(thrifty_system, thrifty_barrier, self._schedules())
        assert (
            thrifty_system.total_account().energy_joules()
            < 0.95 * spin_system.total_account().energy_joules()
        )

    def test_performance_close_to_spinning(self):
        spin_system, spin_endpoints = build()
        run_barrier_loop(
            spin_system, MpBarrier(spin_system, spin_endpoints),
            self._schedules(),
        )
        thrifty_system, thrifty_endpoints = build()
        run_barrier_loop(
            thrifty_system,
            ThriftyMpBarrier(thrifty_system, thrifty_endpoints),
            self._schedules(),
        )
        ratio = (
            thrifty_system.execution_time_ns
            / spin_system.execution_time_ns
        )
        assert ratio < 1.05

    def test_empty_ranks_rejected(self):
        system, _ = build()
        with pytest.raises(SimulationError):
            MpBarrier(system, [])
