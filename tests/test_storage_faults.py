"""Seeded storage fault injection and graceful degradation.

The claims under test, matching ``repro.faults.storage``'s contract:

* the injector is deterministic — one ``(seed, plan)`` against one
  operation sequence injects the same faults at the same points;
* the fault model is physical — a torn write leaves exactly a prefix,
  ``fill_after_bytes`` behaves like a disk with that much room, and a
  crash-at-fsync unwinds like SIGKILL (uncatchable by the ``OSError``
  degrade paths, tmp debris left behind);
* the journal and the result cache *degrade* under a failing disk —
  lost writes are counted/warned/emitted as telemetry, corruption
  found at read time is counted instead of silently swallowed, and a
  campaign on a completely dead disk still finishes with the right
  numbers.
"""

import errno
import json
import os

import pytest

from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.export import matrix_to_json
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import (
    ExperimentEngine,
    record_engine_metrics,
)
from repro.faults.storage import (
    STORAGE_FAULTS_ENV,
    SimulatedCrash,
    StorageFaultInjector,
    StorageFaultPlan,
    active_storage_injector,
    append_line_durable,
    atomic_write_bytes,
    install_from_env,
    install_storage_faults,
    storage_faults,
    uninstall_storage_faults,
)
from repro.telemetry import Tracer
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test starts and ends on the pass-through fast path."""
    uninstall_storage_faults()
    yield
    uninstall_storage_faults()


class TestStorageFaultPlan:
    def test_default_plan_is_noop(self):
        plan = StorageFaultPlan()
        assert plan.is_noop
        assert "noop" in plan.describe()

    def test_active_plan_is_not_noop_and_describes_itself(self):
        plan = StorageFaultPlan(
            seed=7, eio_probability=0.25, crash_at_fsync=3,
        )
        assert not plan.is_noop
        description = plan.describe()
        assert "seed=7" in description
        assert "eio=0.25" in description
        assert "crash_at_fsync=3" in description

    @pytest.mark.parametrize("field_name", (
        "enospc_probability", "torn_write_probability", "eio_probability",
    ))
    @pytest.mark.parametrize("bad", (-0.1, 1.5))
    def test_probabilities_must_be_in_unit_interval(self, field_name, bad):
        with pytest.raises(ConfigError, match=field_name):
            StorageFaultPlan(**{field_name: bad})

    @pytest.mark.parametrize("field_name", (
        "crash_at_fsync", "fill_after_bytes",
    ))
    def test_counters_must_be_non_negative(self, field_name):
        with pytest.raises(ConfigError, match=field_name):
            StorageFaultPlan(**{field_name: -1})

    def test_dict_round_trip(self):
        plan = StorageFaultPlan(
            name="ci-smoke", seed=11, torn_write_probability=0.05,
            crash_at_fsync=20,
        )
        assert StorageFaultPlan.from_dict(plan.as_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown storage fault"):
            StorageFaultPlan.from_dict({"tornado_probability": 1.0})

    def test_from_dict_rejects_non_objects(self):
        with pytest.raises(ConfigError, match="JSON object"):
            StorageFaultPlan.from_dict([1, 2, 3])


def _run_sequence(plan, path, ops=40):
    """Drive one injector through a fixed op sequence; returns the
    per-op outcome trace (None for success, fault kind for a raise)."""
    injector = StorageFaultInjector(plan)
    trace = []
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND)
    try:
        for index in range(ops):
            data = ("op-{}\n".format(index)).encode("ascii")
            try:
                injector.write(fd, data)
            except OSError as exc:
                trace.append(exc.errno)
            else:
                trace.append(None)
    finally:
        os.close(fd)
    return trace, injector


class TestInjectorDeterminism:
    def test_same_plan_same_sequence_same_faults(self, tmp_path):
        plan = StorageFaultPlan(
            seed=7, torn_write_probability=0.2, eio_probability=0.1,
        )
        first, injector_a = _run_sequence(plan, tmp_path / "a")
        second, injector_b = _run_sequence(plan, tmp_path / "b")
        assert first == second
        assert injector_a.injected == injector_b.injected
        assert any(code is not None for code in first), \
            "plan should fire at least once in 40 ops"

    def test_different_seeds_differ(self, tmp_path):
        base = dict(torn_write_probability=0.2, eio_probability=0.1)
        first, _ = _run_sequence(
            StorageFaultPlan(seed=1, **base), tmp_path / "a",
        )
        second, _ = _run_sequence(
            StorageFaultPlan(seed=2, **base), tmp_path / "b",
        )
        assert first != second

    def test_fill_after_bytes_tears_at_the_horizon(self, tmp_path):
        path = tmp_path / "full-disk"
        injector = StorageFaultInjector(
            StorageFaultPlan(fill_after_bytes=10),
        )
        fd = os.open(str(path), os.O_WRONLY | os.O_CREAT)
        try:
            with pytest.raises(OSError) as excinfo:
                injector.write(fd, b"0123456789abcdef")
            assert excinfo.value.errno == errno.ENOSPC
            # Exactly the free space landed: the canonical torn append.
            assert path.read_bytes() == b"0123456789"
            # The disk stays full for every later write.
            with pytest.raises(OSError):
                injector.write(fd, b"x")
            assert path.read_bytes() == b"0123456789"
        finally:
            os.close(fd)
        assert injector.injected["enospc"] == 2

    def test_torn_write_leaves_a_prefix(self, tmp_path):
        path = tmp_path / "torn"
        injector = StorageFaultInjector(
            StorageFaultPlan(seed=3, torn_write_probability=1.0),
        )
        fd = os.open(str(path), os.O_WRONLY | os.O_CREAT)
        try:
            with pytest.raises(OSError):
                injector.write(fd, b"hello world\n")
        finally:
            os.close(fd)
        on_disk = path.read_bytes()
        assert b"hello world\n".startswith(on_disk)
        assert len(on_disk) < len(b"hello world\n")


class TestSimulatedCrash:
    def test_crash_is_not_degradable_as_oserror(self):
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, OSError)
        assert not issubclass(SimulatedCrash, Exception)

    def test_crash_at_fsync_fires_on_the_nth_fsync(self, tmp_path):
        path = tmp_path / "log"
        with storage_faults(StorageFaultPlan(crash_at_fsync=3)) as injector:
            append_line_durable(path, b"one\n")
            append_line_durable(path, b"two\n")
            with pytest.raises(SimulatedCrash):
                append_line_durable(path, b"three\n")
        assert injector.injected["crash-fsync"] == 1
        # The write preceding the fatal fsync did land (the data may or
        # may not have survived a real crash; the fault model keeps it,
        # which is the adversarial case for replay).
        assert path.read_bytes() == b"one\ntwo\nthree\n"

    def test_crash_during_atomic_write_leaves_tmp_debris(self, tmp_path):
        with storage_faults(StorageFaultPlan(crash_at_fsync=1)):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(tmp_path / "target", b"payload")
        assert not (tmp_path / "target").exists()
        debris = list(tmp_path.glob("*.tmp"))
        assert len(debris) == 1, "a crash must leave the tmp file behind"

    def test_clean_oserror_cleans_up_its_tmp_file(self, tmp_path):
        with storage_faults(StorageFaultPlan(seed=5, eio_probability=1.0)):
            with pytest.raises(OSError):
                atomic_write_bytes(tmp_path / "target", b"payload")
        assert list(tmp_path.glob("*.tmp")) == []
        assert not (tmp_path / "target").exists()


class TestShimInstallation:
    def test_fast_path_with_no_injector(self, tmp_path):
        assert active_storage_injector() is None
        append_line_durable(tmp_path / "plain", b"line\n")
        atomic_write_bytes(tmp_path / "atom", b"data")
        assert (tmp_path / "plain").read_bytes() == b"line\n"
        assert (tmp_path / "atom").read_bytes() == b"data"

    def test_context_manager_scopes_the_injector(self):
        plan = StorageFaultPlan(seed=1, eio_probability=0.5)
        with storage_faults(plan) as injector:
            assert active_storage_injector() is injector
            assert injector.plan == plan
        assert active_storage_injector() is None

    def test_install_accepts_prebuilt_injector(self):
        injector = StorageFaultInjector(StorageFaultPlan(seed=2))
        assert install_storage_faults(injector) is injector
        assert active_storage_injector() is injector

    def test_install_from_env_unset_is_none(self):
        assert install_from_env(environ={}) is None
        assert active_storage_injector() is None

    def test_install_from_env_parses_a_plan(self):
        plan = StorageFaultPlan(seed=9, torn_write_probability=0.125)
        injector = install_from_env(environ={
            STORAGE_FAULTS_ENV: json.dumps(plan.as_dict()),
        })
        assert injector is not None
        assert injector.plan == plan
        assert active_storage_injector() is injector

    def test_install_from_env_rejects_bad_json(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            install_from_env(environ={STORAGE_FAULTS_ENV: "{not json"})

    def test_install_from_env_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown"):
            install_from_env(environ={
                STORAGE_FAULTS_ENV: '{"warp_probability": 1.0}',
            })


_DEAD_DISK = StorageFaultPlan(seed=0, eio_probability=1.0)


class TestJournalDegradation:
    def test_append_degrades_counts_and_warns_once(self, tmp_path):
        journal = RunJournal.create({"s": 1}, run_id="j", root=tmp_path)
        with storage_faults(_DEAD_DISK):
            with pytest.warns(RuntimeWarning, match="re-run on resume"):
                assert journal.append("dispatched", cell="a") is False
            # Only the first failure warns; all of them count.
            assert journal.append("dispatched", cell="b") is False
        assert journal.write_errors == 2
        # O_CREAT made the file, but no record bytes landed.
        assert (tmp_path / "j" / "journal.jsonl").read_bytes() == b""
        # A healthy disk afterwards appends normally.
        assert journal.append("completed", cell="a") is True
        state = RunJournal.open("j", root=tmp_path).replay()
        assert set(state.completed) == {"a"}

    def test_checkpoint_degrades_without_raising(self, tmp_path):
        journal = RunJournal.create({"s": 1}, run_id="j", root=tmp_path)
        with storage_faults(_DEAD_DISK), pytest.warns(RuntimeWarning):
            journal.checkpoint(completed=3, total=5)
        assert journal.write_errors == 2  # snapshot + its journal record
        assert journal.read_checkpoint() is None

    def test_store_payload_degrades_and_resume_sees_a_miss(self, tmp_path):
        journal = RunJournal.create({"s": 1}, run_id="j", root=tmp_path)
        with storage_faults(_DEAD_DISK), pytest.warns(RuntimeWarning):
            assert journal.store_payload("cell", {"v": 1}) is False
        assert journal.write_errors == 1
        assert journal.load_payload("cell", default="miss") == "miss"
        # No partial payload file may be visible (atomic-write contract).
        assert list((tmp_path / "j").rglob("*.pkl")) == []

    def test_read_checkpoint_counts_corruption(self, tmp_path):
        journal = RunJournal.create({"s": 1}, run_id="j", root=tmp_path)
        journal.checkpoint(completed=1, total=2)
        (tmp_path / "j" / "checkpoint.json").write_text("{torn")
        with pytest.warns(RuntimeWarning, match="repro fsck"):
            assert journal.read_checkpoint() is None
        assert journal.corrupt_reads == 1

    def test_load_payload_counts_corruption_and_evicts(self, tmp_path):
        journal = RunJournal.create({"s": 1}, run_id="j", root=tmp_path)
        assert journal.store_payload("cell", {"v": 1}) is True
        payload_path = journal._payload_path("cell")
        payload_path.write_bytes(payload_path.read_bytes()[:4])
        with pytest.warns(RuntimeWarning, match="repro fsck"):
            assert journal.load_payload("cell", default="miss") == "miss"
        assert journal.corrupt_reads == 1
        assert not payload_path.exists(), "corrupt payload is evicted"

    def test_faults_emit_storage_fault_telemetry(self, tmp_path):
        journal = RunJournal.create({"s": 1}, run_id="j", root=tmp_path)
        tracer = Tracer()
        journal.tracer = tracer
        with storage_faults(_DEAD_DISK), pytest.warns(RuntimeWarning):
            journal.append("dispatched", cell="a")
        (tmp_path / "j" / "checkpoint.json").write_text("{torn")
        with pytest.warns(RuntimeWarning):
            journal.read_checkpoint()
        kinds = [event.op for event in tracer.events]
        assert kinds == ["journal-append", "corrupt-read"]
        assert tracer.metrics.counter("storage.faults").value == 2


class TestCacheDegradation:
    def test_put_degrades_counts_and_returns_false(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with storage_faults(_DEAD_DISK):
            with pytest.warns(RuntimeWarning, match="degrading"):
                assert cache.put("key-1", {"v": 1}) is False
            assert cache.put("key-2", {"v": 2}) is False  # warns only once
        stats = cache.stats()
        assert stats["write_errors"] == 2
        assert cache.get("key-1", default="miss") == "miss"
        # The degradation is transient: a healthy disk stores again.
        assert cache.put("key-1", {"v": 1}) is True
        assert cache.get("key-1") == {"v": 1}

    def test_unpicklable_values_still_raise(self, tmp_path):
        # Caller bugs are not disk faults and must not be degraded.
        cache = ResultCache(tmp_path / "cache")
        with storage_faults(_DEAD_DISK), pytest.raises(Exception):
            cache.put("key", lambda: None)
        assert cache.stats()["write_errors"] == 0


class TestEngineOnDeadDisk:
    """A campaign whose every durable write fails still finishes."""

    def test_campaign_survives_and_counts_the_damage(self, tmp_path):
        apps, configs, threads = ("fmm",), ("baseline", "thrifty"), 4
        reference = ExperimentEngine(
            cache=tmp_path / "ref-cache",
        ).run_matrix(apps, configs=configs, threads=threads, seed=1)

        journal = RunJournal.create({"s": 1}, run_id="dd", root=tmp_path)
        tracer = Tracer()
        engine = ExperimentEngine(
            cache=tmp_path / "cache", journal=journal, tracer=tracer,
        )
        with storage_faults(_DEAD_DISK), pytest.warns(RuntimeWarning):
            matrix = engine.run_matrix(
                apps, configs=configs, threads=threads, seed=1,
            )
        # Same science out, despite a disk that dropped everything.
        assert matrix_to_json(matrix) == matrix_to_json(reference)
        assert journal.write_errors > 0
        assert engine.cache.stats()["write_errors"] == len(apps) * len(
            configs
        )
        faults = [e for e in tracer.events if e.kind == "storage.fault"]
        assert faults, "cache/journal faults must surface as telemetry"
        assert {e.op for e in faults} >= {"cache-store"}

        metrics = MetricsRegistry()
        record_engine_metrics(metrics, engine)
        assert metrics.counter("journal.write_errors").value == \
            journal.write_errors
        assert metrics.counter("cache.write_errors").value == \
            engine.cache.stats()["write_errors"]
