"""The invariant watchdog over the telemetry stream."""

import pytest

from repro.errors import ReproError
from repro.experiments.runner import run_experiment
from repro.faults.invariants import (
    BARRIER_LIVENESS,
    BARRIER_SAFETY,
    ENERGY_CONSERVATION,
    INVARIANTS,
    MONOTONIC_TIME,
    InvariantChecker,
    InvariantError,
)
from repro.telemetry.events import (
    BarrierCheckIn,
    BarrierDepart,
    BarrierRelease,
    InvariantCheck,
    SleepEnter,
)
from repro.telemetry.tracer import Tracer


def check_in(ts, thread, sequence=1, is_last=False):
    return BarrierCheckIn(
        ts=ts, thread=thread, pc="b0", sequence=sequence, is_last=is_last
    )


def release(ts, thread, sequence=1):
    return BarrierRelease(
        ts=ts, thread=thread, pc="b0", sequence=sequence, bit_ns=None
    )


def depart(ts, thread, sequence=1, arrived_ts=0):
    return BarrierDepart(
        ts=ts, thread=thread, pc="b0", sequence=sequence,
        arrived_ts=arrived_ts, stall_ns=ts - arrived_ts,
    )


#: One clean episode: both threads check in, release, both depart.
CLEAN = [
    check_in(100, 0),
    check_in(200, 1, is_last=True),
    release(200, 1),
    depart(210, 0),
    depart(205, 1),
]


def names(violations):
    return [violation.invariant for violation in violations]


class TestMonotonicTime:
    def test_clean_stream_passes(self):
        assert InvariantChecker().check(CLEAN) == []

    def test_per_thread_regression_detected(self):
        events = [
            SleepEnter(ts=500, thread=0, state="Sleep3", flush_lines=0),
            SleepEnter(ts=400, thread=0, state="Sleep3", flush_lines=0),
        ]
        violations = InvariantChecker().check(events)
        assert names(violations) == [MONOTONIC_TIME]
        assert violations[0].window[0].ts == 500

    def test_cross_thread_backdating_is_legitimate(self):
        # Check-in events carry the backdated arrival timestamp and are
        # emitted after the RMW completes, so a *global* ordering check
        # would false-positive; per-thread ordering must not.
        events = [
            SleepEnter(ts=500, thread=0, state="Sleep3", flush_lines=0),
            SleepEnter(ts=400, thread=1, state="Sleep3", flush_lines=0),
        ]
        assert InvariantChecker().check(events) == []


class TestBarrierSafetyAndLiveness:
    def test_depart_before_release_is_a_safety_violation(self):
        events = [
            check_in(100, 0),
            check_in(200, 1, is_last=True),
            release(200, 1),
            depart(150, 0),
        ]
        assert BARRIER_SAFETY in names(InvariantChecker().check(events))

    def test_check_ins_without_release_is_a_liveness_violation(self):
        events = [check_in(100, 0), check_in(200, 1)]
        violations = InvariantChecker().check(events)
        assert names(violations) == [BARRIER_LIVENESS]
        assert "no release" in violations[0].message

    def test_missing_departure_is_a_liveness_violation(self):
        events = [
            check_in(100, 0),
            check_in(200, 1, is_last=True),
            release(200, 1),
            depart(205, 1),
        ]
        violations = InvariantChecker().check(events)
        assert names(violations) == [BARRIER_LIVENESS]
        assert "never departed" in violations[0].message

    def test_departure_past_deadline_is_a_liveness_violation(self):
        events = CLEAN + [depart(200 + 5_000_000, 2)]
        assert InvariantChecker(deadline_ns=10_000_000).check(events) == []
        late = InvariantChecker(deadline_ns=1_000_000).check(events)
        assert names(late) == [BARRIER_LIVENESS]
        assert "deadline" in late[0].message

    def test_instances_are_independent(self):
        events = list(CLEAN) + [
            check_in(300, 0, sequence=2),
            check_in(400, 1, sequence=2, is_last=True),
            release(400, 1, sequence=2),
            depart(410, 0, sequence=2),
            depart(405, 1, sequence=2),
        ]
        assert InvariantChecker().check(events) == []

    def test_deadline_must_be_positive(self):
        with pytest.raises(ReproError):
            InvariantChecker(deadline_ns=0)


class _Account:
    def __init__(self, ns):
        self._ns = ns

    def time_ns(self):
        return self._ns


class TestEnergyConservation:
    def test_matching_accounts_pass(self):
        accounts = [_Account(210), _Account(205)]
        assert InvariantChecker().check(CLEAN, accounts=accounts) == []

    def test_mismatch_detected(self):
        accounts = [_Account(210), _Account(999)]
        violations = InvariantChecker().check(CLEAN, accounts=accounts)
        assert names(violations) == [ENERGY_CONSERVATION]
        assert "cpu 1" in violations[0].message

    def test_skipped_without_accounts(self):
        assert InvariantChecker().check(CLEAN) == []


class TestReporting:
    def test_assert_ok_raises_with_structured_violations(self):
        events = [check_in(100, 0)]
        with pytest.raises(InvariantError) as excinfo:
            InvariantChecker().assert_ok(events)
        assert len(excinfo.value.violations) == 1
        violation = excinfo.value.violations[0]
        assert violation.invariant == BARRIER_LIVENESS
        assert violation.window  # the offending event window travels

    def test_audit_emits_one_check_event_per_invariant(self):
        tracer = Tracer()
        InvariantChecker().audit(CLEAN, tracer=tracer)
        checks = [
            event for event in tracer.events
            if isinstance(event, InvariantCheck)
        ]
        # Energy conservation is skipped without accounts.
        assert [c.invariant for c in checks] == [
            name for name in INVARIANTS if name != ENERGY_CONSERVATION
        ]
        assert all(c.passed for c in checks)

    def test_audit_counts_violations_per_invariant(self):
        tracer = Tracer()
        InvariantChecker().audit(
            [check_in(100, 0)], accounts=[_Account(100)], tracer=tracer
        )
        checks = {
            event.invariant: event for event in tracer.events
            if isinstance(event, InvariantCheck)
        }
        assert set(checks) == set(INVARIANTS)
        assert not checks[BARRIER_LIVENESS].passed
        assert checks[BARRIER_LIVENESS].violations == 1
        assert checks[MONOTONIC_TIME].passed


class TestRealRuns:
    @pytest.mark.parametrize("config", ["baseline", "thrifty"])
    def test_clean_simulation_satisfies_all_invariants(self, config):
        result = run_experiment(
            "fmm", config, threads=8, telemetry=True
        )
        checker = InvariantChecker(deadline_ns=10_000_000)
        assert checker.check(result.telemetry.events) == []
