"""The hung-worker watchdog: policy, monitor, and engine supervision.

The engine-integration tests wedge a real worker with SIGSTOP — the
one failure mode the per-cell timeout cannot distinguish from "slow" —
and assert the supervisor kills it, requeues its cell through the
normal retry machinery, and (with a journal) records the stall.
"""

import os
import signal

import pytest

from repro.errors import ConfigError
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import CellFailure, ExperimentEngine
from repro.experiments.watchdog import (
    BEAT,
    BEAT_INDEX,
    HeartbeatMonitor,
    WatchdogPolicy,
    start_beat_thread,
)


class TestWatchdogPolicy:
    def test_defaults_are_valid(self):
        policy = WatchdogPolicy()
        assert policy.stale_after_s > policy.beat_interval_s

    def test_validation(self):
        with pytest.raises(ConfigError):
            WatchdogPolicy(beat_interval_s=0.0)
        with pytest.raises(ConfigError):
            WatchdogPolicy(beat_interval_s=1.0, stale_after_s=0.5)

    def test_coerce_off(self):
        assert WatchdogPolicy.coerce(None) is None
        assert WatchdogPolicy.coerce(False) is None

    def test_coerce_true_and_passthrough(self):
        assert WatchdogPolicy.coerce(True) == WatchdogPolicy()
        policy = WatchdogPolicy(beat_interval_s=0.2, stale_after_s=3.0)
        assert WatchdogPolicy.coerce(policy) is policy

    def test_coerce_number_uses_tenfold_margin(self):
        policy = WatchdogPolicy.coerce(0.25)
        assert policy.beat_interval_s == 0.25
        assert policy.stale_after_s == 2.5

    def test_coerce_rejects_garbage(self):
        with pytest.raises(ConfigError):
            WatchdogPolicy.coerce("fast")


class TestHeartbeatMonitor:
    def _monitor(self):
        clock = {"now": 100.0}
        monitor = HeartbeatMonitor(
            WatchdogPolicy(beat_interval_s=0.1, stale_after_s=1.0),
            clock=lambda: clock["now"],
        )
        return monitor, clock

    def test_registration_counts_as_a_beat(self):
        monitor, clock = self._monitor()
        monitor.register("w1")
        assert monitor.staleness("w1") == 0.0
        clock["now"] += 0.5
        assert monitor.staleness("w1") == 0.5
        assert not monitor.is_stale("w1")

    def test_beat_resets_staleness(self):
        monitor, clock = self._monitor()
        monitor.register("w1")
        clock["now"] += 0.9
        monitor.beat("w1")
        clock["now"] += 0.9
        assert not monitor.is_stale("w1")
        clock["now"] += 0.2
        assert monitor.is_stale("w1")

    def test_untracked_worker_never_stale(self):
        monitor, clock = self._monitor()
        clock["now"] += 100.0
        assert monitor.staleness("ghost") == 0.0
        assert not monitor.is_stale("ghost")

    def test_declare_stall_counts_and_forgets(self):
        monitor, clock = self._monitor()
        monitor.register("w1")
        clock["now"] += 2.0
        assert monitor.is_stale("w1")
        monitor.declare_stall("w1")
        assert monitor.stalls == 1
        assert not monitor.is_stale("w1")  # no longer tracked


class TestBeatThread:
    def test_beats_arrive_and_stop(self):
        import multiprocessing
        import time

        queue = multiprocessing.get_context("fork").SimpleQueue()
        stop = start_beat_thread(queue, 0.02)
        deadline = time.monotonic() + 2.0
        while queue.empty() and time.monotonic() < deadline:
            time.sleep(0.01)
        stop.set()
        assert not queue.empty()
        index, status, count = queue.get()
        assert (index, status) == (BEAT_INDEX, BEAT)
        assert count >= 1


def _stall_once(cell):
    """SIGSTOP the worker on the first attempt; succeed on the retry."""
    flag = cell.get("flag")
    if flag is not None and not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("stalled")
        os.kill(os.getpid(), signal.SIGSTOP)
    return cell["name"]


def _stall_always(cell):
    if cell.get("action") == "hang":
        os.kill(os.getpid(), signal.SIGSTOP)
    return cell["name"]


_FAST_WATCHDOG = WatchdogPolicy(beat_interval_s=0.02, stale_after_s=0.3)


class TestEngineSupervision:
    def test_stalled_worker_killed_and_cell_retried(self, tmp_path):
        engine = ExperimentEngine(
            workers=2, retries=2, chunksize=1, backoff_base_s=0.0,
            watchdog=_FAST_WATCHDOG,
        )
        out = engine.run_cells(
            [
                {"name": "c0", "flag": str(tmp_path / "flag")},
                {"name": "c1"},
            ],
            task_fn=_stall_once,
        )
        assert out == ["c0", "c1"]
        assert engine.stats.stalled == 1
        assert engine.stats.retries == 1

    def test_stall_exhausts_retries_into_structured_failure(self):
        engine = ExperimentEngine(
            workers=2, retries=0, chunksize=1, watchdog=_FAST_WATCHDOG,
        )
        out = engine.run_cells(
            [{"name": "c0", "action": "hang"}, {"name": "c1"}],
            task_fn=_stall_always,
        )
        assert out[1] == "c1"
        failure = out[0]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "stalled"
        assert "no heartbeat" in failure.message

    def test_stall_is_journaled(self, tmp_path):
        journal = RunJournal.create(
            {"kind": "watchdog-test"}, run_id="wd", root=tmp_path,
        )
        engine = ExperimentEngine(
            workers=2, retries=1, chunksize=1, backoff_base_s=0.0,
            watchdog=_FAST_WATCHDOG, journal=journal,
        )
        out = engine.run_cells(
            [
                {"name": "c0", "flag": str(tmp_path / "flag")},
                {"name": "c1"},
            ],
            task_fn=_stall_once,
        )
        assert out == ["c0", "c1"]
        state = journal.replay()
        assert state.stalls == 1
        assert state.finished
        assert state.completed_ids == {"cell#0", "cell#1"}

    def test_healthy_workers_unaffected_by_watchdog(self):
        engine = ExperimentEngine(workers=2, watchdog=_FAST_WATCHDOG)
        out = engine.run_cells(
            [{"name": "c0"}, {"name": "c1"}], task_fn=_stall_always,
        )
        assert out == ["c0", "c1"]
        assert engine.stats.stalled == 0

    def test_engine_coerces_watchdog_argument(self):
        engine = ExperimentEngine(watchdog=0.5)
        assert engine.watchdog == WatchdogPolicy(
            beat_interval_s=0.5, stale_after_s=5.0,
        )
        with pytest.raises(ConfigError):
            ExperimentEngine(watchdog="always")
