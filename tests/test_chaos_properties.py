"""Property-based chaos: any seeded plan leaves every invariant intact.

The paper's robustness argument (Sections 3.3-3.4) is that the thrifty
barrier composes redundant wake-up mechanisms, so timing faults cost
energy and lateness but never correctness. This suite holds the whole
stack to that across a sweep of sampled fault plans: every barrier
releases, no safety/liveness/accounting invariant breaks, and identical
(seed, plan, configuration) triples reproduce bit-for-bit.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments.configs import CONFIG_NAMES
from repro.faults.chaos import (
    DEGRADED_THRIFTY,
    run_chaos_campaign,
    run_chaos_cell,
    sample_plans,
)

#: ~50 sampled plans, each paired with a configuration round-robin so
#: all five configurations face many distinct plans.
PLANS = sample_plans(50, seed=11)
CELLS = [
    (plan, CONFIG_NAMES[index % len(CONFIG_NAMES)])
    for index, plan in enumerate(PLANS)
]


class TestChaosProperties:
    @pytest.mark.parametrize(
        "plan, config", CELLS,
        ids=["{}-{}".format(p.name, c) for p, c in CELLS],
    )
    def test_no_violations_and_eventual_release(self, plan, config):
        report = run_chaos_cell("fmm", config, plan, threads=8)
        assert report.violations == ()
        assert report.releases > 0

    def test_cell_reports_are_reproducible(self):
        plan = PLANS[0]

        def cell():
            return run_chaos_cell("fmm", "thrifty", plan, threads=8)

        first, second = cell(), cell()
        assert first.injected == second.injected
        assert first.late_wakes == second.late_wakes
        assert first.releases == second.releases
        assert first.execution_time_ns == second.execution_time_ns
        assert first.energy_joules == second.energy_joules

    def test_sampled_plans_are_deterministic(self):
        assert sample_plans(5, seed=11) == sample_plans(5, seed=11)
        assert sample_plans(5, seed=11) != sample_plans(5, seed=12)


class TestChaosCampaign:
    def test_full_matrix_campaign(self):
        report = run_chaos_campaign(
            sample_plans(2, seed=11), apps=("fmm",), threads=8,
        )
        assert len(report.cells) == 2 * len(CONFIG_NAMES)
        assert report.ok
        assert report.total_injected > 0
        # Every cell carries deltas against its clean reference.
        assert all(cell.energy_delta is not None for cell in report.cells)
        assert all(cell.time_delta_ns is not None for cell in report.cells)

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            run_chaos_campaign(
                sample_plans(1), configs=("nope",), threads=8
            )

    def test_sample_plans_validates_count(self):
        with pytest.raises(ConfigError):
            sample_plans(0)

    def test_degraded_thrifty_overrides_are_active(self):
        # The campaign runs thrifty configurations with graceful
        # degradation on; the knob set must stay in sync with the
        # ThriftyConfig fields it overrides.
        from repro.config import ThriftyConfig

        ThriftyConfig(**DEGRADED_THRIFTY)  # must construct cleanly
        assert DEGRADED_THRIFTY["probation_episodes"] > 0
        assert DEGRADED_THRIFTY["fallback_spin_then_sleep"] is True
