"""Unit tests for workload models and imbalance shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    Balanced,
    FixedStraggler,
    PhaseSpec,
    RotatingStraggler,
    UniformWindow,
    WorkloadModel,
    get_model,
)
from repro.workloads.base import predicted_imbalance
from repro.workloads.imbalance import Swing
from repro.workloads.splash2 import (
    SPLASH2_NAMES,
    TABLE2_IMBALANCE,
    TABLE2_PROBLEM_SIZE,
    TARGET_APPS,
)


class TestImbalanceModels:
    def test_balanced_is_flat_without_noise(self):
        rng = np.random.default_rng(0)
        durations = Balanced(sigma=0).sample(rng, 8, 1_000)
        assert (durations == 1_000).all()

    def test_uniform_window_within_bounds(self):
        rng = np.random.default_rng(0)
        durations = UniformWindow(0.5, sigma=0).sample(rng, 1000, 10_000)
        assert durations.min() >= 7_500
        assert durations.max() <= 12_500

    def test_rotating_straggler_one_heavy_thread(self):
        rng = np.random.default_rng(0)
        durations = RotatingStraggler(1.0, sigma=0).sample(rng, 16, 1_000)
        assert (durations == 2_000).sum() == 1
        assert (durations == 1_000).sum() == 15

    def test_rotating_straggler_rotates(self):
        rng = np.random.default_rng(0)
        model = RotatingStraggler(1.0, sigma=0)
        positions = {
            int(model.sample(rng, 16, 1_000).argmax()) for _ in range(50)
        }
        assert len(positions) > 5

    def test_fixed_straggler_is_fixed(self):
        rng = np.random.default_rng(0)
        model = FixedStraggler(3, 0.5, sigma=0)
        for _ in range(10):
            assert model.sample(rng, 8, 1_000).argmax() == 3

    def test_swing_samples_two_levels(self):
        rng = np.random.default_rng(0)
        swing = Swing(low=0.5, high=4.0, p_high=0.5)
        values = {swing.sample(rng) for _ in range(100)}
        assert values == {0.5, 4.0}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            UniformWindow(3.0)
        with pytest.raises(WorkloadError):
            RotatingStraggler(-0.1)
        with pytest.raises(WorkloadError):
            Balanced(sigma=-1)
        with pytest.raises(WorkloadError):
            Swing(low=0)
        with pytest.raises(WorkloadError):
            Swing(p_high=2)
        with pytest.raises(WorkloadError):
            FixedStraggler(-1, 0.5)

    def test_zero_mean_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            Balanced().sample(rng, 4, 0)

    @given(
        st.integers(2, 64),
        st.integers(1_000, 10**7),
        st.floats(0.0, 1.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_samples_always_positive_integers(self, threads, mean, width):
        rng = np.random.default_rng(42)
        durations = UniformWindow(width, sigma=0.05).sample(
            rng, threads, mean
        )
        assert durations.dtype == np.int64
        assert (durations >= 1).all()


class TestWorkloadModel:
    def _model(self):
        return WorkloadModel(
            name="toy",
            setup_phases=(PhaseSpec("setup", 1_000),),
            loop_phases=(
                PhaseSpec("a", 2_000),
                PhaseSpec("b", 3_000),
            ),
            iterations=4,
        )

    def test_static_barriers_in_order(self):
        assert self._model().static_barriers == ["setup", "a", "b"]

    def test_dynamic_instances(self):
        assert self._model().dynamic_instances == 1 + 4 * 2

    def test_generate_is_deterministic(self):
        model = self._model()
        first = model.generate(8, seed=7)
        second = model.generate(8, seed=7)
        for one, two in zip(first, second):
            assert one.pc == two.pc
            assert (one.durations == two.durations).all()

    def test_different_seeds_differ(self):
        model = WorkloadModel(
            name="noisy",
            loop_phases=(PhaseSpec("a", 10_000, UniformWindow(0.5)),),
            iterations=3,
        )
        first = model.generate(8, seed=1)
        second = model.generate(8, seed=2)
        assert any(
            (one.durations != two.durations).any()
            for one, two in zip(first, second)
        )

    def test_empty_model_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadModel(name="empty")

    def test_loop_without_iterations_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadModel(
                name="bad", loop_phases=(PhaseSpec("a", 1),), iterations=0
            )

    def test_invalid_phase_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec("bad", 0)
        with pytest.raises(WorkloadError):
            PhaseSpec("bad", 100, dirty_lines=-1)

    def test_zero_threads_rejected(self):
        with pytest.raises(WorkloadError):
            self._model().generate(0)

    def test_expected_serial_ns_positive(self):
        assert self._model().expected_serial_ns(4) >= 9 * 1_000


class TestSplash2Registry:
    def test_all_ten_applications_present(self):
        assert len(SPLASH2_NAMES) == 10
        assert set(TABLE2_IMBALANCE) == set(TABLE2_PROBLEM_SIZE)

    def test_table2_descending_order(self):
        values = list(TABLE2_IMBALANCE.values())
        assert values == sorted(values, reverse=True)

    def test_target_apps_have_10_percent_imbalance(self):
        for name in TARGET_APPS:
            assert TABLE2_IMBALANCE[name] >= 0.10
        for name in set(SPLASH2_NAMES) - set(TARGET_APPS):
            assert TABLE2_IMBALANCE[name] < 0.10

    def test_unknown_application_rejected(self):
        with pytest.raises(WorkloadError):
            get_model("raytrace")  # excluded by the paper

    def test_fft_and_cholesky_are_non_repeating(self):
        for name in ("fft", "cholesky"):
            model = get_model(name)
            assert model.iterations == 0
            assert len(model.setup_phases) == len(model.static_barriers)

    def test_fmm_has_three_main_loop_barriers(self):
        model = get_model("fmm")
        assert len(model.loop_phases) == 3
        assert model.iterations == 8  # 8 time steps (Table 2)

    def test_ocean_has_many_swinging_barriers(self):
        model = get_model("ocean")
        assert len(model.loop_phases) >= 10
        assert any(spec.swing is not None for spec in model.loop_phases)

    def test_water_steps_match_table2(self):
        assert get_model("water-nsq").iterations == 12
        assert get_model("water-sp").iterations == 12

    def test_every_model_generates(self):
        for name in SPLASH2_NAMES:
            instances = get_model(name).generate(8, seed=0)
            assert len(instances) == get_model(name).dynamic_instances

    def test_analytic_imbalance_tracks_table2(self):
        # Coarse sanity: the generator-level estimate is within a factor
        # band of the target (the simulator-level calibration test in
        # test_calibration.py is the precise one).
        for name in SPLASH2_NAMES:
            estimate = predicted_imbalance(get_model(name), 64, seed=3)
            target = TABLE2_IMBALANCE[name]
            assert estimate < 1.8 * target, name
            if target > 0.02:
                # The near-balanced apps (cholesky, radiosity) derive
                # most of their measured imbalance from barrier check-in
                # overhead, which the generator-level estimate excludes.
                assert estimate > 0.4 * target, name
