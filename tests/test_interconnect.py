"""Unit and property tests for the hypercube interconnect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.interconnect import Hypercube, Network, ecube_path
from repro.interconnect.routing import links_used
from repro.sim import Simulator


class TestHypercube:
    def test_dimension_of_64_nodes_is_6(self):
        assert Hypercube(64).dimension == 6

    def test_single_node_cube(self):
        cube = Hypercube(1)
        assert cube.dimension == 0
        assert cube.neighbors(0) == []
        assert cube.hops(0, 0) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            Hypercube(12)
        with pytest.raises(ConfigError):
            Hypercube(0)

    def test_neighbors_differ_in_one_bit(self):
        cube = Hypercube(16)
        for neighbor in cube.neighbors(5):
            assert bin(5 ^ neighbor).count("1") == 1

    def test_hops_is_hamming_distance(self):
        cube = Hypercube(64)
        assert cube.hops(0b000000, 0b111111) == 6
        assert cube.hops(12, 12) == 0
        assert cube.hops(0b1010, 0b0101) == 4

    def test_out_of_range_node_rejected(self):
        cube = Hypercube(8)
        with pytest.raises(ConfigError):
            cube.hops(0, 8)
        with pytest.raises(ConfigError):
            cube.neighbors(-1)

    def test_diameter(self):
        assert Hypercube(64).diameter == 6

    def test_average_distance_64(self):
        # d/2 * n/(n-1) = 3 * 64/63
        assert Hypercube(64).average_distance() == pytest.approx(3 * 64 / 63)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_hops_symmetric(self, a, b):
        cube = Hypercube(64)
        assert cube.hops(a, b) == cube.hops(b, a)

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    def test_hops_triangle_inequality(self, a, b, c):
        cube = Hypercube(64)
        assert cube.hops(a, c) <= cube.hops(a, b) + cube.hops(b, c)


class TestEcubeRouting:
    def test_path_endpoints(self):
        path = ecube_path(3, 60, 6)
        assert path[0] == 3
        assert path[-1] == 60

    def test_path_length_is_hamming_distance_plus_one(self):
        assert len(ecube_path(0, 0b111, 3)) == 4

    def test_each_hop_flips_one_bit_in_increasing_order(self):
        path = ecube_path(0b0000, 0b1011, 4)
        flipped = [
            (a ^ b).bit_length() - 1 for a, b in zip(path[:-1], path[1:])
        ]
        assert flipped == sorted(flipped)
        assert all(
            bin(a ^ b).count("1") == 1 for a, b in zip(path[:-1], path[1:])
        )

    def test_self_path(self):
        assert ecube_path(9, 9, 6) == [9]

    def test_links_used(self):
        assert links_used(0, 0b11, 2) == [(0, 1), (1, 3)]

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_path_is_valid_walk(self, src, dst):
        cube = Hypercube(64)
        path = ecube_path(src, dst, 6)
        assert len(path) == cube.hops(src, dst) + 1
        for a, b in zip(path[:-1], path[1:]):
            assert b in cube.neighbors(a)


class TestNetwork:
    def _network(self, n_nodes=64):
        config = MachineConfig(n_nodes=n_nodes)
        sim = Simulator()
        return sim, Network(sim, Hypercube(n_nodes), config.network)

    def test_local_delivery_is_free(self):
        _, net = self._network()
        assert net.latency_ns(5, 5) == 0

    def test_control_message_latency_table1(self):
        # 1 hop, 16-byte control message: 2*16 marshal + 16 pin-to-pin.
        _, net = self._network()
        assert net.latency_ns(0, 1, size_bytes=16) == 48

    def test_data_message_pays_serialization(self):
        # 80-byte message = 5 flits: 4 body flits behind the head at 4 ns.
        _, net = self._network()
        assert net.latency_ns(0, 1, size_bytes=80) == 48 + 4 * 4

    def test_latency_grows_with_hops(self):
        _, net = self._network()
        near = net.latency_ns(0, 1)
        far = net.latency_ns(0, 63)
        assert far - near == 5 * 16

    def test_transfer_event_fires_at_latency(self):
        sim, net = self._network()
        event = net.transfer(0, 3, size_bytes=16)
        sim.run()
        assert event.triggered
        assert sim.now == net.latency_ns(0, 3)

    def test_send_invokes_handler_remotely(self):
        sim, net = self._network()
        received = []
        net.send(0, 7, lambda: received.append(sim.now))
        sim.run()
        assert received == [net.latency_ns(0, 7)]

    def test_stats_count_messages_and_hops(self):
        sim, net = self._network()
        net.transfer(0, 1)
        net.transfer(0, 3)
        net.transfer(4, 4)  # local, not counted
        sim.run()
        assert net.stats.messages == 2
        assert net.stats.total_hops == 3
        assert net.stats.mean_hops == pytest.approx(1.5)

    def test_link_tracking_optional(self):
        config = MachineConfig(n_nodes=8)
        sim = Simulator()
        net = Network(sim, Hypercube(8), config.network, track_links=True)
        net.transfer(0, 3)
        sim.run()
        assert net.stats.link_loads[(0, 1)] == 1
        assert net.stats.link_loads[(1, 3)] == 1

    def test_invalid_size_rejected(self):
        _, net = self._network()
        with pytest.raises(ConfigError):
            net.latency_ns(0, 1, size_bytes=0)

    def test_requires_hypercube(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            Network(sim, object(), MachineConfig().network)
