"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.errors import SchedulingError
from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(30, log.append, "c")
    sim.schedule(10, log.append, "a")
    sim.schedule(20, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_runs_in_insertion_order():
    sim = Simulator()
    log = []
    for tag in "abcde":
        sim.schedule(7, log.append, tag)
    sim.run()
    assert log == list("abcde")


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1, lambda: None)


def test_float_delay_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.schedule(1.5, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(50, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    log = []
    handle = sim.schedule(5, log.append, "x")
    sim.schedule(3, handle.cancel)
    sim.run()
    assert log == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(5, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_nested_scheduling_from_callback():
    sim = Simulator()
    log = []

    def outer():
        log.append(("outer", sim.now))
        sim.schedule(4, inner)

    def inner():
        log.append(("inner", sim.now))

    sim.schedule(6, outer)
    sim.run()
    assert log == [("outer", 6), ("inner", 10)]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    log = []
    sim.schedule(10, log.append, "early")
    sim.schedule(100, log.append, "late")
    sim.run(until=50)
    assert log == ["early"]
    assert sim.now == 50
    sim.run()
    assert log == ["early", "late"]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=123)
    assert sim.now == 123


def test_max_events_guard():
    sim = Simulator()

    def rescheduler():
        sim.schedule(1, rescheduler)

    sim.schedule(0, rescheduler)
    with pytest.raises(SchedulingError):
        sim.run(max_events=100)


def test_pending_count_ignores_cancelled():
    sim = Simulator()
    keep = sim.schedule(5, lambda: None)
    drop = sim.schedule(6, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert not keep.cancelled


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_trace_hook_sees_every_callback():
    seen = []
    sim = Simulator(trace=lambda now, fn, args: seen.append(now))
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run()
    assert seen == [1, 2]


def test_clock_never_goes_backward():
    sim = Simulator()
    times = []
    for delay in (5, 1, 9, 1, 5):
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
