"""Calibration tests: measured Baseline imbalance vs. paper Table 2.

These run the full 64-thread Baseline simulation for every application
(a few seconds each); they are the ground truth behind the Table 2
benchmark.
"""

import pytest

from repro.workloads import WorkloadRunner, get_model
from repro.workloads.splash2 import SPLASH2_NAMES, TABLE2_IMBALANCE

#: Relative tolerance of the calibration. The models are stochastic and
#: the simulator adds check-in/coherence overheads the analytic tuning
#: cannot fold in exactly.
TOLERANCE = 0.15

_cache = {}


def measured_imbalance(name):
    if name not in _cache:
        result = WorkloadRunner(get_model(name), seed=1).run()
        _cache[name] = result.barrier_imbalance()
    return _cache[name]


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_imbalance_matches_table2(name):
    measured = measured_imbalance(name)
    target = TABLE2_IMBALANCE[name]
    assert measured == pytest.approx(target, rel=TOLERANCE), (
        "{}: measured {:.4f} vs Table 2 {:.4f}".format(
            name, measured, target
        )
    )


def test_table2_ranking_preserved():
    # The paper sorts Table 2 by descending imbalance; the five target
    # apps must stay separated from the rest at the 10% line.
    for name in SPLASH2_NAMES:
        measured = measured_imbalance(name)
        if TABLE2_IMBALANCE[name] >= 0.10:
            assert measured >= 0.09, name
        else:
            assert measured < 0.10, name
