"""Tests for the Oracle-Halt / Ideal post-hoc accounting."""

import pytest

from repro.config import DEFAULT_SLEEP_STATES, SLEEP1_HALT, SLEEP3
from repro.energy.accounting import Category
from repro.sync import ConventionalBarrier, oracle_rerun

from tests.conftest import (
    make_domain,
    make_system,
    run_phases,
    staggered_schedules,
)


def baseline_run(schedules):
    system = make_system()
    domain = make_domain(system)
    barrier = ConventionalBarrier(system, domain, len(schedules), pc="b0")
    run_phases(system, barrier, schedules)
    return system, barrier.trace


class TestOracleInvariants:
    def test_total_time_preserved_per_thread(self):
        system, trace = baseline_run(staggered_schedules(4, 3, 0, 400_000))
        accounts = system.cpu_accounts()
        result = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        for before, after in zip(accounts, result.accounts):
            assert after.time_ns() == pytest.approx(
                before.time_ns(), rel=0.01
            )

    def test_compute_untouched(self):
        system, trace = baseline_run(staggered_schedules(4, 3, 0, 400_000))
        accounts = system.cpu_accounts()
        result = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        for before, after in zip(accounts, result.accounts):
            assert after.time_ns(Category.COMPUTE) == before.time_ns(
                Category.COMPUTE
            )
            assert after.energy_joules(Category.COMPUTE) == pytest.approx(
                before.energy_joules(Category.COMPUTE)
            )

    def test_oracle_halt_saves_energy(self):
        system, trace = baseline_run(staggered_schedules(4, 3, 0, 400_000))
        accounts = system.cpu_accounts()
        result = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        base_joules = sum(a.energy_joules() for a in accounts)
        oracle_joules = sum(a.energy_joules() for a in result.accounts)
        assert oracle_joules < base_joules

    def test_ideal_saves_more_than_oracle_halt(self):
        system, trace = baseline_run(staggered_schedules(4, 3, 0, 800_000))
        accounts = system.cpu_accounts()
        halt = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        ideal = oracle_rerun(
            trace, accounts, system.power, DEFAULT_SLEEP_STATES
        )
        assert sum(a.energy_joules() for a in ideal.accounts) < sum(
            a.energy_joules() for a in halt.accounts
        )
        assert ideal.sleeps_by_state[SLEEP3.name] > 0

    def test_short_stalls_remain_spin(self):
        # 5 us stalls: even Halt's 20 us round trip does not fit.
        system, trace = baseline_run(staggered_schedules(4, 3, 50_000, 2_000))
        accounts = system.cpu_accounts()
        result = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        assert result.slept_stalls == 0
        assert result.spin_stalls > 0
        total_sleep = sum(
            a.time_ns(Category.SLEEP) for a in result.accounts
        )
        assert total_sleep == 0

    def test_sleep_residency_excludes_round_trip(self):
        system, trace = baseline_run(staggered_schedules(4, 2, 0, 500_000))
        accounts = system.cpu_accounts()
        result = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        for account in result.accounts:
            transitions = account.time_ns(Category.TRANSITION)
            if transitions:
                sleeps = account.time_ns(Category.SLEEP)
                # Each slept stall contributes exactly one round trip.
                n_sleeps = transitions // SLEEP1_HALT.round_trip_ns
                assert sleeps > 0
                assert transitions == n_sleeps * SLEEP1_HALT.round_trip_ns

    def test_last_thread_keeps_most_energy(self):
        system, trace = baseline_run(staggered_schedules(4, 3, 0, 400_000))
        accounts = system.cpu_accounts()
        result = oracle_rerun(trace, accounts, system.power, (SLEEP1_HALT,))
        savings = [
            before.energy_joules() - after.energy_joules()
            for before, after in zip(accounts, result.accounts)
        ]
        # Thread 3 is always last: nothing to save there.
        assert savings[3] == pytest.approx(0.0, abs=1e-6)
        assert savings[0] > savings[3]
