"""Shared fixtures/helpers for barrier-level tests."""

import os
import tempfile

# Keep the on-disk result cache out of the developer's real cache
# directory: a persistent cache would serve stale results to tests
# after simulator changes (its key tracks configuration and package
# version, not code content). A fresh per-session directory keeps
# every test run cold while still exercising the cache machinery.
os.environ.setdefault(
    "REPRO_CACHE_DIR", tempfile.mkdtemp(prefix="repro-test-cache-")
)

from repro.config import MachineConfig
from repro.machine import System
from repro.predict import LastValuePredictor, TimingDomain


def make_system(n_nodes=4, detailed=True, **overrides):
    config = MachineConfig(
        n_nodes=n_nodes, detailed_memory=detailed, **overrides
    )
    return System(config)


def make_domain(system, n_threads=None, predictor=None):
    n_threads = n_threads or system.n_nodes
    if predictor is None:
        predictor = LastValuePredictor()
    return TimingDomain(system, n_threads, predictor=predictor)


def run_phases(system, barrier, schedules, dirty_lines=0):
    """Run one barrier in a loop.

    ``schedules[t]`` is the list of compute durations (ns) thread ``t``
    executes before each barrier instance; all threads must have the
    same number of phases.
    """
    n_threads = len(schedules)
    lengths = {len(s) for s in schedules}
    assert len(lengths) == 1, "all threads need the same phase count"

    def program(node):
        for duration in schedules[node.node_id]:
            yield from node.cpu.compute(duration)
            yield from barrier.wait(node, dirty_lines=dirty_lines)

    system.run_threads(program, n_threads=n_threads)
    return barrier.trace


def staggered_schedules(n_threads, n_instances, base_ns, step_ns):
    """Thread ``t`` computes ``base + t*step`` each phase: a stable,
    perfectly repeatable imbalance (thread n-1 is always last)."""
    return [
        [base_ns + thread * step_ns] * n_instances
        for thread in range(n_threads)
    ]
