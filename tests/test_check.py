"""``repro check``: schedule exploration, oracles, shrinking, replay.

The contract under test, end to end:

* the two protocol oracles fire on exactly the event shapes they
  claim to catch (synthetic streams);
* exploration is deterministic — same cell, seed, and budgets produce
  an identical report;
* every registered mutant in :mod:`repro.sync.mutants` is caught
  within a small budget, with the oracle(s) its spec promises, while
  all five paper configurations stay clean under the same budget;
* a counterexample shrinks to a minimal decision string, exports as a
  replayable artifact plus a Perfetto witness, and ``--replay``
  reproduces the recorded violations exactly;
* exploration composes with a :class:`~repro.faults.plan.FaultPlan`;
* the CLI wires it all together with the documented exit codes.
"""

import json

import pytest

from repro.check import (
    NO_LOST_WAKEUP,
    RELEASE_SAFETY,
    ScheduleDriver,
    check_no_lost_wakeup,
    check_release_safety,
    explore,
    load_counterexample,
    replay_counterexample,
    run_schedule,
    shrink_decisions,
    witness_path,
    write_counterexample,
)
from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.configs import CONFIG_NAMES
from repro.faults.plan import FaultPlan
from repro.sync.mutants import MUTANT_NAMES, mutant_spec
from repro.telemetry.events import (
    BarrierCheckIn,
    BarrierRelease,
    SleepEnter,
    SleepExit,
)

#: Small cell every live exploration here runs on (seconds, not
#: minutes: budgets scale with choice-point count).
SMALL = dict(threads=4, seed=1)


def _enter(ts, thread):
    return SleepEnter(ts=ts, thread=thread, state="sleep2", flush_lines=4)


def _exit(ts, thread):
    return SleepExit(ts=ts, thread=thread, state="sleep2", entered_ts=0,
                     resident_ns=ts, flush_ns=10, flushed_lines=4)


def _check_in(ts, thread, sequence=0, is_last=False):
    return BarrierCheckIn(ts=ts, thread=thread, pc="b", sequence=sequence,
                          is_last=is_last)


def _release(ts, thread, sequence=0):
    return BarrierRelease(ts=ts, thread=thread, pc="b", sequence=sequence,
                          bit_ns=None)


class TestNoLostWakeupOracle:
    def test_matched_sleep_is_clean(self):
        events = [_enter(10, 1), _exit(50, 1)]
        assert check_no_lost_wakeup(events) == []

    def test_open_sleep_is_a_violation(self):
        events = [_enter(10, 1), _enter(20, 2), _exit(50, 2)]
        (violation,) = check_no_lost_wakeup(events)
        assert violation.invariant == NO_LOST_WAKEUP
        assert "thread 1" in violation.message
        assert violation.first_index == 0  # points at the SleepEnter

    def test_stuck_threads_are_a_violation_without_sleep_events(self):
        events = [_check_in(10, 0)]
        (violation,) = check_no_lost_wakeup(
            events, stuck_threads=("thread[3]", "thread[5]")
        )
        assert violation.invariant == NO_LOST_WAKEUP
        assert "thread[3]" in violation.message

    def test_reentered_sleep_tracks_the_latest_enter(self):
        events = [_enter(10, 1), _exit(20, 1), _enter(30, 1)]
        (violation,) = check_no_lost_wakeup(events)
        assert "at 30" in violation.message


class TestReleaseSafetyOracle:
    def test_full_episode_is_clean(self):
        events = [_check_in(10, 0), _check_in(20, 1, is_last=True),
                  _release(25, 1)]
        assert check_release_safety(events, n_threads=2) == []

    def test_arrival_after_release_is_a_violation(self):
        events = [_check_in(10, 0), _release(25, 0), _check_in(30, 1)]
        (violation,) = check_release_safety(events, n_threads=2)
        assert violation.invariant == RELEASE_SAFETY
        assert "before thread 1 arrived" in violation.message

    def test_short_arrival_count_is_a_violation(self):
        events = [_check_in(10, 0), _release(25, 0)]
        (violation,) = check_release_safety(events, n_threads=4)
        assert "only 1 of 4 arrivals" in violation.message

    def test_unreleased_episode_is_left_to_liveness(self):
        events = [_check_in(10, 0)]
        assert check_release_safety(events, n_threads=4) == []


class TestRunSchedule:
    def test_default_schedule_is_clean_and_all_fifo(self):
        result = run_schedule("fmm", "baseline", **SMALL)
        assert result.ok
        assert result.stuck_threads == ()
        assert result.decisions  # choice points were consulted
        assert all(d == 0 for d in result.decisions)
        assert all(a >= 2 for a in result.arities)

    def test_replaying_the_realized_trace_is_bit_identical(self):
        first = run_schedule("fmm", "baseline", **SMALL)
        again = run_schedule(
            "fmm", "baseline", decisions=first.decisions, **SMALL
        )
        assert again.trace == first.trace
        assert again.executed == first.executed
        assert again.execution_time_ns == first.execution_time_ns
        assert [repr(e) for e in again.events] == [
            repr(e) for e in first.events
        ]

    def test_derived_config_explores_its_baseline(self):
        result = run_schedule("fmm", "ideal", **SMALL)
        assert result.ok

    def test_unknown_config_raises(self):
        with pytest.raises(ConfigError, match="unknown configuration"):
            run_schedule("fmm", "no-such-config", **SMALL)

    def test_driver_trace_reset_between_runs(self):
        driver = ScheduleDriver(())
        run_schedule("fmm", "baseline", tie_breaker=driver, **SMALL)
        first_len = len(driver.decisions)
        run_schedule("fmm", "baseline", tie_breaker=driver, **SMALL)
        assert len(driver.decisions) == first_len


class TestExplorerDeterminism:
    @pytest.mark.parametrize("strategy", ["dfs", "random"])
    def test_same_seed_same_report(self, strategy):
        def snapshot():
            report = explore(
                "fmm", "baseline", max_schedules=5, max_depth=6,
                strategy=strategy, **SMALL
            )
            return (
                report.schedules_run, report.unique_schedules,
                report.exhausted_budget,
                tuple(f.decisions for f in report.failures),
            )

        assert snapshot() == snapshot()

    def test_dfs_visits_the_default_schedule_first(self):
        report = explore(
            "fmm", "baseline", max_schedules=1, max_depth=4, **SMALL
        )
        assert report.schedules_run == 1
        assert report.ok

    def test_bad_strategy_and_budgets_raise(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            explore("fmm", "baseline", strategy="bogus", **SMALL)
        with pytest.raises(ConfigError, match="max_schedules"):
            explore("fmm", "baseline", max_schedules=0, **SMALL)
        with pytest.raises(ConfigError, match="max_depth"):
            explore("fmm", "baseline", max_depth=0, **SMALL)


class TestCleanConfigs:
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_paper_config_is_clean_under_exploration(self, config):
        report = explore(
            "fmm", config, max_schedules=4, max_depth=6, **SMALL
        )
        assert report.ok, [
            v.describe() for f in report.failures for v in f.violations
        ]

    def test_random_walks_stay_clean_on_baseline(self):
        report = explore(
            "fmm", "baseline", max_schedules=4, strategy="random", **SMALL
        )
        assert report.ok


class TestMutantsAreCaught:
    @pytest.mark.parametrize("name", MUTANT_NAMES)
    def test_mutant_is_caught_within_budget(self, name):
        spec = mutant_spec(name)
        report = explore(
            spec.app, spec.base_config, threads=spec.threads,
            seed=spec.seed, max_schedules=20, max_depth=16, mutant=name,
        )
        assert not report.ok, "mutant {} escaped exploration".format(name)
        caught = {
            v.invariant
            for f in report.failures
            for v in f.violations
        }
        for oracle in spec.expected:
            assert oracle in caught, (
                "mutant {} was caught, but not by the promised {} "
                "oracle (got {})".format(name, oracle, sorted(caught))
            )

    def test_unknown_mutant_raises(self):
        with pytest.raises(ConfigError, match="unknown mutant"):
            run_schedule("fmm", "baseline", mutant="no-such-bug", **SMALL)


class TestShrink:
    def test_strips_fifo_tail_without_spending_trials(self):
        minimized, trials = shrink_decisions(
            (0, 0, 0, 0), lambda candidate: True
        )
        assert minimized == ()
        assert trials == 0

    def test_finds_the_single_essential_deviation(self):
        # Failure iff position 5 deviates; everything else is noise.
        def still_fails(candidate):
            return len(candidate) > 5 and candidate[5] == 2

        minimized, trials = shrink_decisions(
            (1, 0, 3, 0, 1, 2, 0, 4, 1), still_fails
        )
        assert minimized == (0, 0, 0, 0, 0, 2)
        assert trials <= 64

    def test_budget_bounds_the_simulation_count(self):
        calls = []

        def still_fails(candidate):
            calls.append(candidate)
            return True

        shrink_decisions(tuple(range(1, 40)), still_fails, max_trials=7)
        assert len(calls) <= 7


class TestArtifactRoundTrip:
    def _counterexample(self, tmp_path, name="off-by-one-release"):
        spec = mutant_spec(name)
        result = run_schedule(
            spec.app, spec.base_config, threads=spec.threads,
            seed=spec.seed, mutant=name,
        )
        assert not result.ok
        path = str(tmp_path / "cx.json")
        write_counterexample(path, result, decisions=(), mutant=name)
        return path, result

    def test_artifact_replays_exactly(self, tmp_path):
        path, result = self._counterexample(tmp_path)
        reproduced, replayed, expected = replay_counterexample(path)
        assert reproduced
        assert [(v.invariant, v.message) for v in replayed.violations] \
            == expected

    def test_artifact_carries_violation_windows(self, tmp_path):
        path, _result = self._counterexample(tmp_path)
        payload = load_counterexample(path)
        violation = payload["violations"][0]
        assert violation["window_first_index"] is not None
        assert violation["window_last_index"] is not None
        assert violation["window_first_ts"] is not None

    def test_witness_trace_is_written_beside_the_artifact(self, tmp_path):
        path, _result = self._counterexample(tmp_path)
        with open(witness_path(path)) as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]

    def test_tampered_artifact_does_not_reproduce(self, tmp_path):
        path, _result = self._counterexample(tmp_path)
        payload = load_counterexample(path)
        payload["violation_keys"] = payload["violation_keys"][:1]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        reproduced, _replayed, _expected = replay_counterexample(path)
        assert not reproduced

    def test_wrong_kind_is_rejected(self, tmp_path):
        path = tmp_path / "not-an-artifact.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ConfigError, match="not a"):
            load_counterexample(str(path))


class TestFaultPlanComposition:
    def test_exploration_composes_with_a_sampled_plan(self):
        plan = FaultPlan.sample(3)
        report = explore(
            "fmm", "thrifty", max_schedules=3, max_depth=4,
            fault_plan=plan, **SMALL
        )
        assert report.ok, [
            v.describe() for f in report.failures for v in f.violations
        ]

    def test_plan_rides_through_the_artifact(self, tmp_path):
        plan = FaultPlan.sample(3)
        result = run_schedule("fmm", "baseline", fault_plan=plan, **SMALL)
        path = str(tmp_path / "cx.json")
        write_counterexample(path, result, fault_plan=plan)
        payload = load_counterexample(path)
        assert payload["fault_plan"] == plan.as_dict()


class TestCheckCli:
    def test_clean_sweep_exits_zero(self, capsys):
        status = main([
            "check", "--threads", "4", "--schedules", "2", "--depth", "4",
            "--configs", "baseline",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_mutant_exits_one_and_writes_replayable_artifact(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        status = main([
            "check", "--mutant", "off-by-one-release",
            "--schedules", "8", "--depth", "8",
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "counterexample written to" in out
        assert (tmp_path / "counterexample.json").is_file()
        assert (tmp_path / "counterexample-witness.json").is_file()

        status = main(["check", "--replay", "counterexample.json"])
        assert status == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_unknown_mutant_is_a_usage_error(self, capsys):
        assert main(["check", "--mutant", "bogus"]) == 2
        assert "unknown mutant" in capsys.readouterr().err

    def test_unknown_config_is_a_usage_error(self, capsys):
        assert main(["check", "--configs", "bogus"]) == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_missing_replay_file_is_a_usage_error(self, tmp_path, capsys):
        assert main([
            "check", "--replay", str(tmp_path / "missing.json"),
        ]) == 2


class TestChaosCliSatellites:
    def test_fail_fast_stops_at_the_first_violating_cell(self):
        from repro.faults.chaos import run_chaos_campaign, sample_plans

        # An absurd liveness deadline makes every cell violate, so a
        # fail-fast campaign must stop after exactly one.
        plans = sample_plans(2, seed=1)
        report = run_chaos_campaign(
            plans, apps=("fmm",), configs=("baseline", "thrifty"),
            threads=4, seed=1, deadline_ns=1, fail_fast=True,
        )
        assert report.stopped_early
        assert len(report.cells) == 1
        assert report.cells[0].violations

        full = run_chaos_campaign(
            plans, apps=("fmm",), configs=("baseline", "thrifty"),
            threads=4, seed=1, deadline_ns=1,
        )
        assert not full.stopped_early
        assert len(full.cells) == 4

    def test_chaos_json_report_embeds_violation_windows(
        self, tmp_path, capsys
    ):
        path = tmp_path / "chaos.json"
        status = main([
            "chaos", "--plans", "1", "--threads", "4",
            "--configs", "baseline", "--json", str(path),
        ])
        assert status == 0
        with open(path) as handle:
            report = json.load(handle)
        assert report["kind"] == "chaos-campaign"
        assert report["ok"] is True
        (cell,) = report["cells"]
        assert cell["app"] == "fmm"
        assert cell["violations"] == []
        assert "window_first_index" not in json.dumps(cell["violations"])

    def test_chaos_json_windows_point_into_the_stream(self, tmp_path):
        from repro.faults.chaos import (
            chaos_report_as_dict,
            run_chaos_campaign,
            sample_plans,
        )

        report = run_chaos_campaign(
            sample_plans(1, seed=1), apps=("fmm",),
            configs=("baseline",), threads=4, seed=1, deadline_ns=1,
        )
        document = chaos_report_as_dict(report)
        (cell,) = document["cells"]
        assert cell["violations"], "deadline_ns=1 must violate liveness"
        for violation in cell["violations"]:
            assert violation["window_first_index"] is not None
            assert violation["window_last_index"] is not None
            assert (violation["window_first_index"]
                    <= violation["window_last_index"])
            assert violation["window_first_ts"] is not None
        json.dumps(document)  # fully serializable

    def test_fail_fast_cli_exits_violation(self, capsys, monkeypatch):
        from repro.faults import chaos as chaos_module

        # Shrink the campaign's liveness deadline so the CLI path
        # itself trips the oracle in the first cell and stops early.
        real = chaos_module.run_chaos_campaign

        def tiny_deadline_campaign(*args, **kwargs):
            kwargs["deadline_ns"] = 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            chaos_module, "run_chaos_campaign", tiny_deadline_campaign
        )
        status = main([
            "chaos", "--plans", "2", "--threads", "4",
            "--configs", "baseline", "thrifty", "--fail-fast",
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "STOPPED EARLY" in out
