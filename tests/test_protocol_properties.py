"""Property-based tests of the coherence protocol.

Two families:

* **functional correctness**: any sequential mix of loads, stores, and
  RMWs, issued from arbitrary nodes over a small address pool, produces
  the same values as a plain dictionary;
* **protocol invariants** after quiescence, even for *concurrent* mixes:
  at most one MODIFIED copy per line, directory-EXCLUSIVE matches the
  owner's cache, SHARED lines have no dirty copies anywhere, and the
  directory's sharer set is a superset of the caches' (silent S
  evictions may leave stale sharers, never missing ones).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import CacheController, DirState, LineState, MemorySystem
from repro.config import MachineConfig
from repro.sim import Simulator

N_NODES = 4
ADDRESSES = [0x1000 * i for i in range(6)]

ops = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "rmw"]),
        st.integers(0, N_NODES - 1),
        st.sampled_from(ADDRESSES),
        st.integers(0, 999),
    ),
    min_size=1,
    max_size=40,
)


def build():
    sim = Simulator()
    memsys = MemorySystem(sim, MachineConfig(n_nodes=N_NODES))
    for node in range(N_NODES):
        memsys.controllers[node] = CacheController(sim, node, memsys)
    return sim, memsys


def apply_op(memsys, kind, node, addr, value):
    if kind == "load":
        return memsys.load(node, addr)
    if kind == "store":
        return memsys.store(node, addr, value)
    return memsys.rmw(node, addr, lambda old: old + value)


def check_invariants(memsys):
    for addr in ADDRESSES:
        line = memsys.line_of(addr)
        home = memsys.home_of(addr)
        entry = memsys.directories[home].entry(line)
        holders = {
            node: memsys.hierarchies[node].state(line)
            for node in range(N_NODES)
        }
        dirty = [n for n, s in holders.items() if s is LineState.MODIFIED]
        shared = [n for n, s in holders.items() if s is LineState.SHARED]
        # Single-writer invariant.
        assert len(dirty) <= 1, (addr, holders, entry)
        if entry.state is DirState.EXCLUSIVE:
            # The registered owner holds the only dirty copy (or lost it
            # to an in-flight write-back, in which case nobody is dirty).
            assert dirty in ([entry.owner], []), (addr, holders, entry)
            assert not shared or shared == [entry.owner]
        else:
            assert not dirty, (addr, holders, entry)
        if entry.state is DirState.SHARED:
            # Sharer list may be stale (silent evictions) but never
            # misses a real holder.
            assert set(shared) <= entry.sharers, (addr, holders, entry)
        if entry.state is DirState.UNCACHED:
            assert not dirty


class TestSequentialFunctionalEquivalence:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_dictionary(self, sequence):
        sim, memsys = build()
        reference = {}
        results = []

        def driver():
            for kind, node, addr, value in sequence:
                got = yield from apply_op(memsys, kind, node, addr, value)
                results.append(got)

        sim.spawn(driver())
        sim.run()
        expected = []
        for kind, _node, addr, value in sequence:
            if kind == "load":
                expected.append(reference.get(addr, 0))
            elif kind == "store":
                reference[addr] = value
                expected.append(None)
            else:
                expected.append(reference.get(addr, 0))
                reference[addr] = reference.get(addr, 0) + value
        assert results == expected
        for addr in ADDRESSES:
            assert memsys.peek(addr) == reference.get(addr, 0)

    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_invariants_after_sequential_mix(self, sequence):
        sim, memsys = build()

        def driver():
            for kind, node, addr, value in sequence:
                yield from apply_op(memsys, kind, node, addr, value)

        sim.spawn(driver())
        sim.run()
        check_invariants(memsys)


class TestConcurrentInvariants:
    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_concurrent_mix(self, sequence):
        sim, memsys = build()
        for kind, node, addr, value in sequence:
            sim.spawn(apply_op(memsys, kind, node, addr, value))
        sim.run()
        check_invariants(memsys)

    @given(
        st.integers(0, len(ADDRESSES) - 1),
        st.lists(st.integers(0, N_NODES - 1), min_size=2, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_concurrent_increments_all_land(self, addr_index, nodes):
        sim, memsys = build()
        addr = ADDRESSES[addr_index]
        for node in nodes:
            sim.spawn(memsys.rmw(node, addr, lambda old: old + 1))
        sim.run()
        assert memsys.peek(addr) == len(nodes)
        check_invariants(memsys)
