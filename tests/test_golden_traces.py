"""Golden-trace determinism corpus for the simulator core.

The corpus pins the *observable behaviour* of the discrete-event core:
for a fixed matrix of cells (all five paper configurations x three
seeds x two node counts) it records SHA-256 digests of

* the full typed telemetry event stream (emission order included),
* the metrics-registry snapshot (counters, gauges, histograms), and
* the result fields (execution time, energy/time breakdowns, thrifty
  stats, oracle metadata, barrier imbalance)

as produced by the simulator. The digests in ``tests/golden/corpus.json``
were recorded against the pre-rewrite (seed) core; any scheduler or
event-machinery change must reproduce them byte-for-byte, which is the
contract that let the calendar-queue rewrite land without perturbing a
single published figure.

Re-recording (only legitimate after an *intentional* behaviour change,
e.g. a new telemetry event type) is explicit::

    PYTHONPATH=src python tests/test_golden_traces.py --update

and the resulting diff of ``corpus.json`` must be reviewed cell by cell.
"""

import hashlib
import json
import os

import pytest

from repro.config import MachineConfig
from repro.experiments.configs import CONFIG_NAMES
from repro.experiments.runner import run_experiment

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
CORPUS_PATH = os.path.join(GOLDEN_DIR, "corpus.json")

#: The fixed corpus matrix: every paper configuration, three seeds, two
#: machine sizes. Small node counts keep the 30 cells fast enough for
#: tier-1 while still exercising check-in contention, hybrid wake-up
#: races, flushes, and the derived-oracle replay paths.
CORPUS_APP = "fmm"
CORPUS_SEEDS = (1, 2, 3)
CORPUS_THREADS = (8, 16)


def corpus_cells():
    """The 30 (config, seed, threads) cells, in stable order."""
    return [
        (config, seed, threads)
        for config in CONFIG_NAMES
        for seed in CORPUS_SEEDS
        for threads in CORPUS_THREADS
    ]


def cell_key(config, seed, threads):
    return "{}/{}/seed{}/n{}".format(CORPUS_APP, config, seed, threads)


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def compute_digests(config, seed, threads):
    """Run one corpus cell and digest its observable behaviour."""
    result = run_experiment(
        CORPUS_APP,
        config,
        threads=threads,
        seed=seed,
        machine_config=MachineConfig(n_nodes=threads),
        telemetry=True,
    )
    snapshot = result.telemetry
    events_text = "\n".join(repr(event) for event in snapshot.events)
    metrics_text = json.dumps(snapshot.metrics, sort_keys=True)
    result_text = json.dumps(
        {
            "app": result.app,
            "config": result.config,
            "n_threads": result.n_threads,
            "execution_time_ns": result.execution_time_ns,
            "barrier_imbalance": result.barrier_imbalance,
            "energy_breakdown": result.energy_breakdown(),
            "time_breakdown": result.time_breakdown(),
            "thrifty_stats": result.thrifty_stats,
            "oracle_meta": result.oracle_meta,
        },
        sort_keys=True,
    )
    return {
        "events": _sha256(events_text),
        "metrics": _sha256(metrics_text),
        "result": _sha256(result_text),
    }


def load_corpus():
    with open(CORPUS_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def corpus():
    if not os.path.exists(CORPUS_PATH):
        pytest.fail(
            "golden corpus missing; record it with "
            "`PYTHONPATH=src python tests/test_golden_traces.py --update`"
        )
    return load_corpus()


def test_corpus_covers_full_matrix(corpus):
    expected = {cell_key(*cell) for cell in corpus_cells()}
    assert set(corpus["cells"]) == expected
    assert len(corpus["cells"]) == 30


@pytest.mark.parametrize(
    "config,seed,threads",
    corpus_cells(),
    ids=[cell_key(*cell) for cell in corpus_cells()],
)
def test_cell_reproduces_golden_digests(corpus, config, seed, threads):
    recorded = corpus["cells"][cell_key(config, seed, threads)]
    fresh = compute_digests(config, seed, threads)
    assert fresh == recorded, (
        "simulator behaviour diverged from the golden corpus for "
        "{}; if (and only if) this change is intentional, re-record "
        "with `PYTHONPATH=src python tests/test_golden_traces.py "
        "--update` and review the corpus diff".format(
            cell_key(config, seed, threads)
        )
    )


def record_corpus():
    """Re-record every cell digest (the --update path)."""
    cells = {}
    for config, seed, threads in corpus_cells():
        key = cell_key(config, seed, threads)
        cells[key] = compute_digests(config, seed, threads)
        print("recorded", key)
    corpus = {
        "app": CORPUS_APP,
        "seeds": list(CORPUS_SEEDS),
        "threads": list(CORPUS_THREADS),
        "configs": list(CONFIG_NAMES),
        "cells": cells,
    }
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    with open(CORPUS_PATH, "w") as fh:
        json.dump(corpus, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote", CORPUS_PATH, "({} cells)".format(len(cells)))


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        record_corpus()
    else:
        print(__doc__)
        sys.exit(2)
