"""Concurrent multi-process access to the ResultCache.

The cache's correctness story under concurrency is tmp-file +
``os.replace``: a reader sees either a complete old entry, a complete
new entry, or a miss — never a torn pickle. These tests hammer one
cache directory from multiple fork processes simultaneously and assert
exactly that, for the sharded layout, the legacy flat layout, and the
flat→sharded migration races the serve dedup path exercises.

Every stored value is self-validating (``payload`` must equal a
function of ``n``), so a torn or interleaved read cannot sneak through
as a false pass.
"""

import multiprocessing
import pickle

import pytest

from repro.experiments.cache import ResultCache

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required",
)


def _ctx():
    return multiprocessing.get_context("fork")


def _value(key, n):
    return {"key": key, "n": n, "payload": "x" * (200 + n % 97)}


def _consistent(key, value):
    return (
        isinstance(value, dict)
        and value.get("key") == key
        and value.get("payload") == "x" * (200 + value["n"] % 97)
    )


_KEYS = ["{:02x}deadbeef".format(i) for i in range(8)]


def _writer(cache_dir, rounds, out):
    cache = ResultCache(cache_dir)
    for n in range(rounds):
        for key in _KEYS:
            cache.put(key, _value(key, n))
    out.put(("writer-ok", cache.stores))


def _reader(cache_dir, rounds, out):
    cache = ResultCache(cache_dir)
    torn = 0
    hits = 0
    for _ in range(rounds):
        for key in _KEYS:
            value = cache.get(key)
            if value is None:
                continue
            hits += 1
            if not _consistent(key, value):
                torn += 1
    out.put(("reader", hits, torn, cache.errors))


def _run(procs, timeout=60.0):
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout)
    assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]


class TestConcurrentSharded:
    def test_two_writers_one_reader_never_torn(self, tmp_path):
        ctx = _ctx()
        out = ctx.SimpleQueue()
        cache_dir = str(tmp_path / "cache")
        _run([
            ctx.Process(target=_writer, args=(cache_dir, 40, out)),
            ctx.Process(target=_writer, args=(cache_dir, 40, out)),
            ctx.Process(target=_reader, args=(cache_dir, 120, out)),
        ])
        reports = [out.get() for _ in range(3)]
        reader = next(r for r in reports if r[0] == "reader")
        _, hits, torn, errors = reader
        assert torn == 0
        assert errors == 0
        assert hits > 0  # the race was actually exercised
        # Every key converged to a complete, consistent entry.
        cache = ResultCache(cache_dir)
        for key in _KEYS:
            assert _consistent(key, cache.get(key))
        assert cache.layout()["flat"] == 0

    def test_no_tmp_litter_after_the_storm(self, tmp_path):
        ctx = _ctx()
        out = ctx.SimpleQueue()
        cache_dir = str(tmp_path / "cache")
        _run([
            ctx.Process(target=_writer, args=(cache_dir, 30, out))
            for _ in range(3)
        ])
        for _ in range(3):
            out.get()
        leftovers = list((tmp_path / "cache").rglob("*.tmp"))
        assert leftovers == []


def _plant_flat(cache_dir, key, n):
    """Write a legacy flat-layout entry the way the old cache did."""
    path = cache_dir / (key + ".pkl")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(_value(key, n), fh)


def _migrating_reader(cache_dir, rounds, out):
    """Reads that trigger flat→sharded migration, racing its peers."""
    cache = ResultCache(cache_dir)
    misses = 0
    torn = 0
    for _ in range(rounds):
        for key in _KEYS:
            value = cache.get(key)
            if value is None:
                misses += 1
            elif not _consistent(key, value):
                torn += 1
    out.put(("migrator", misses, torn, cache.errors))


class TestConcurrentLegacyFlat:
    def test_racing_migrations_lose_no_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        for key in _KEYS:
            _plant_flat(cache_dir, key, 7)
        ctx = _ctx()
        out = ctx.SimpleQueue()
        _run([
            ctx.Process(
                target=_migrating_reader, args=(str(cache_dir), 50, out),
            )
            for _ in range(3)
        ])
        for _ in range(3):
            _, misses, torn, errors = out.get()
            # A planted entry exists in one layout or the other at
            # every instant: migration must never surface a miss or a
            # torn value.
            assert misses == 0
            assert torn == 0
            assert errors == 0
        cache = ResultCache(str(cache_dir))
        assert cache.layout() == {"sharded": len(_KEYS), "flat": 0}
        for key in _KEYS:
            assert _consistent(key, cache.get(key))

    def test_writer_racing_flat_readers(self, tmp_path):
        # Writers put straight to the shard while readers are still
        # migrating flat entries for the same keys: last write wins,
        # reads stay consistent throughout.
        cache_dir = tmp_path / "cache"
        for key in _KEYS:
            _plant_flat(cache_dir, key, 3)
        ctx = _ctx()
        out = ctx.SimpleQueue()
        _run([
            ctx.Process(
                target=_writer, args=(str(cache_dir), 40, out),
            ),
            ctx.Process(
                target=_migrating_reader, args=(str(cache_dir), 80, out),
            ),
        ])
        reports = [out.get() for _ in range(2)]
        migrator = next(r for r in reports if r[0] == "migrator")
        _, misses, torn, errors = migrator
        assert misses == 0
        assert torn == 0
        assert errors == 0
        cache = ResultCache(str(cache_dir))
        assert cache.layout()["flat"] == 0
