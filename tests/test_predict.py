"""Unit tests for predictors, thresholds, and timing bookkeeping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.predict import (
    ExponentialPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
    TimingDomain,
    is_overpredicted,
    should_update_predictor,
)

from tests.conftest import make_system


class TestLastValuePredictor:
    def test_cold_entry_predicts_none(self):
        predictor = LastValuePredictor()
        assert predictor.predict("b1") is None
        assert predictor.stats.cold_misses == 1

    def test_predicts_last_observation(self):
        predictor = LastValuePredictor()
        predictor.update("b1", 1_000)
        predictor.update("b1", 2_000)
        assert predictor.predict("b1") == 2_000

    def test_entries_are_pc_indexed(self):
        predictor = LastValuePredictor()
        predictor.update("b1", 1_000)
        predictor.update("b2", 9_000)
        assert predictor.predict("b1") == 1_000
        assert predictor.predict("b2") == 9_000

    def test_peek_does_not_count_stats(self):
        predictor = LastValuePredictor()
        predictor.update("b1", 5)
        predictor.peek("b1")
        assert predictor.stats.predictions == 0

    def test_negative_bit_rejected(self):
        with pytest.raises(ConfigError):
            LastValuePredictor().update("b1", -1)

    def test_disable_bits_are_per_thread(self):
        predictor = LastValuePredictor()
        predictor.disable("b1", 3)
        assert predictor.is_disabled("b1", 3)
        assert not predictor.is_disabled("b1", 2)
        assert not predictor.is_disabled("b2", 3)

    def test_disable_idempotent_in_stats(self):
        predictor = LastValuePredictor()
        predictor.disable("b1", 3)
        predictor.disable("b1", 3)
        assert predictor.stats.disables == 1

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=30))
    def test_always_predicts_most_recent(self, values):
        predictor = LastValuePredictor()
        for value in values:
            predictor.update("pc", value)
        assert predictor.predict("pc") == values[-1]


class TestMovingAveragePredictor:
    def test_window_mean(self):
        predictor = MovingAveragePredictor(window=2)
        for value in (100, 200, 400):
            predictor.update("pc", value)
        assert predictor.predict("pc") == 300

    def test_short_history_uses_what_exists(self):
        predictor = MovingAveragePredictor(window=8)
        predictor.update("pc", 500)
        assert predictor.predict("pc") == 500

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            MovingAveragePredictor(window=0)


class TestExponentialPredictor:
    def test_first_update_sets_value(self):
        predictor = ExponentialPredictor(alpha=0.5)
        predictor.update("pc", 1_000)
        assert predictor.predict("pc") == 1_000

    def test_smoothing(self):
        predictor = ExponentialPredictor(alpha=0.5)
        predictor.update("pc", 1_000)
        predictor.update("pc", 2_000)
        assert predictor.predict("pc") == 1_500

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigError):
            ExponentialPredictor(alpha=0.0)
        with pytest.raises(ConfigError):
            ExponentialPredictor(alpha=1.5)

    @given(st.lists(st.integers(100, 10**7), min_size=2, max_size=20))
    def test_prediction_within_observed_range(self, values):
        predictor = ExponentialPredictor(alpha=0.3)
        for value in values:
            predictor.update("pc", value)
        assert min(values) <= predictor.predict("pc") <= max(values)


class TestThresholds:
    def test_on_time_wake_is_not_overprediction(self):
        assert not is_overpredicted(
            wakeup_ts_ns=900, release_ts_ns=1_000, bit_ns=10_000
        )

    def test_small_penalty_tolerated(self):
        # 5% of BIT, under the 10% threshold.
        assert not is_overpredicted(1_500, 1_000, bit_ns=10_000)

    def test_large_penalty_trips_cutoff(self):
        assert is_overpredicted(3_000, 1_000, bit_ns=10_000)

    def test_threshold_configurable(self):
        assert is_overpredicted(1_500, 1_000, bit_ns=10_000, threshold=0.04)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigError):
            is_overpredicted(1, 0, 10, threshold=0)

    def test_update_allowed_for_normal_interval(self):
        assert should_update_predictor(10_000, 12_000)

    def test_update_filtered_for_inordinate_interval(self):
        # Context switch: observed 10x the prediction.
        assert not should_update_predictor(10_000, 100_000, factor=4.0)

    def test_cold_entry_always_updates(self):
        assert should_update_predictor(None, 10**9)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError):
            should_update_predictor(1, 1, factor=1.0)


class TestTimingDomain:
    def test_initial_brts_zero(self):
        system = make_system()
        domain = TimingDomain(system, 4)
        assert all(domain.brts(t) == 0 for t in range(4))

    def test_compute_time_is_local_elapsed(self):
        system = make_system()
        domain = TimingDomain(system, 4)
        system.sim.schedule(500, lambda: None)
        system.sim.run()
        assert domain.compute_time(0) == 500

    def test_advance_accumulates(self):
        system = make_system()
        domain = TimingDomain(system, 4)
        assert domain.advance(1, 1_000) == 1_000
        assert domain.advance(1, 250) == 1_250
        assert domain.brts(0) == 0

    def test_negative_bit_rejected(self):
        system = make_system()
        domain = TimingDomain(system, 4)
        with pytest.raises(SimulationError):
            domain.advance(0, -1)

    def test_estimate_cold_returns_none(self):
        system = make_system()
        from repro.predict import LastValuePredictor

        domain = TimingDomain(system, 4, predictor=LastValuePredictor())
        assert domain.estimate("pc", 0) == (None, None)

    def test_estimate_uses_brts_plus_prediction(self):
        system = make_system()
        from repro.predict import LastValuePredictor

        predictor = LastValuePredictor()
        domain = TimingDomain(system, 4, predictor=predictor)
        predictor.update("pc", 10_000)
        domain.advance(2, 3_000)
        system.sim.schedule(4_000, lambda: None)
        system.sim.run()
        wake_ts, stall = domain.estimate("pc", 2)
        assert wake_ts == 13_000
        assert stall == 9_000  # 13_000 - now(4_000)

    def test_estimate_disabled_thread_returns_none(self):
        system = make_system()
        from repro.predict import LastValuePredictor

        predictor = LastValuePredictor()
        predictor.update("pc", 10_000)
        predictor.disable("pc", 1)
        domain = TimingDomain(system, 4, predictor=predictor)
        assert domain.estimate("pc", 1) == (None, None)
        assert domain.estimate("pc", 0) != (None, None)

    def test_measure_bit(self):
        system = make_system()
        domain = TimingDomain(system, 4)
        domain.advance(3, 2_000)
        system.sim.schedule(5_000, lambda: None)
        system.sim.run()
        assert domain.measure_bit(3) == 3_000

    def test_record_observed_release(self):
        system = make_system()
        domain = TimingDomain(system, 4)
        system.sim.schedule(700, lambda: None)
        system.sim.run()
        assert domain.record_observed_release(0) == 700
        assert domain.brts(0) == 700

    def test_requires_threads(self):
        system = make_system()
        with pytest.raises(SimulationError):
            TimingDomain(system, 0)
