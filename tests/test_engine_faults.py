"""Fault injection for the parallel experiment engine.

A cell that raises, a cell that exceeds its timeout, and a worker that
dies mid-cell must each produce a structured :class:`CellFailure` while
the rest of the matrix completes; strict mode raises instead; bounded
retry rescues transient crashes.
"""

import os
import signal
import time

import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import CellFailure, ExperimentEngine


def _task(cell):
    """Fault-injection task: each cell is a dict describing its fate."""
    action = cell.get("action", "ok")
    if action == "raise":
        raise ValueError("injected failure in {}".format(cell["name"]))
    if action == "hang":
        time.sleep(30)
    if action == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if action == "die-once":
        marker = cell["marker"]
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("attempt 1\n")
            os.kill(os.getpid(), signal.SIGKILL)
    return cell["name"]


def _cells(*specs):
    return [dict(spec, name="cell{}".format(i)) for i, spec in enumerate(specs)]


class TestRaisingCell:
    def test_failure_recorded_and_matrix_completes(self):
        engine = ExperimentEngine(workers=2)
        out = engine.run_cells(
            _cells({}, {"action": "raise"}, {}), task_fn=_task
        )
        assert out[0] == "cell0" and out[2] == "cell2"
        failure = out[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert "injected failure" in failure.message
        assert engine.stats.failures == 1
        assert engine.stats.executed == 2

    def test_exceptions_are_not_retried(self):
        engine = ExperimentEngine(workers=2, retries=3)
        out = engine.run_cells(_cells({"action": "raise"}, {}), task_fn=_task)
        assert isinstance(out[0], CellFailure)
        assert out[0].attempts == 1
        assert engine.stats.retries == 0

    def test_strict_mode_raises_with_failures_attached(self):
        engine = ExperimentEngine(workers=2, strict=True)
        with pytest.raises(ExperimentError) as excinfo:
            engine.run_cells(
                _cells({}, {"action": "raise"}, {}), task_fn=_task
            )
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.failures[0].kind == "error"

    def test_serial_path_records_failures_too(self):
        engine = ExperimentEngine(workers=1)
        out = engine.run_cells(_cells({"action": "raise"}, {}), task_fn=_task)
        assert isinstance(out[0], CellFailure)
        assert out[0].kind == "error"
        assert out[1] == "cell1"


class TestTimeout:
    def test_hung_cell_times_out_others_complete(self):
        engine = ExperimentEngine(workers=2, timeout=0.5, retries=0)
        start = time.monotonic()
        out = engine.run_cells(
            _cells({}, {"action": "hang"}, {}), task_fn=_task
        )
        elapsed = time.monotonic() - start
        assert out[0] == "cell0" and out[2] == "cell2"
        failure = out[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "timeout"
        assert elapsed < 10  # the 30s sleep was actually cut short

    def test_innocent_chunkmates_are_rescued(self):
        # A hung cell in the middle of a chunk must not take down the
        # cells queued behind it in the same worker.
        engine = ExperimentEngine(
            workers=2, timeout=0.5, retries=0, chunksize=3
        )
        out = engine.run_cells(
            _cells({"action": "hang"}, {}, {}), task_fn=_task
        )
        assert isinstance(out[0], CellFailure)
        assert out[0].kind == "timeout"
        assert out[1] == "cell1" and out[2] == "cell2"


class TestWorkerCrash:
    def test_killed_worker_isolated(self):
        engine = ExperimentEngine(workers=2, retries=0)
        out = engine.run_cells(
            _cells({}, {"action": "die"}, {}), task_fn=_task
        )
        assert out[0] == "cell0" and out[2] == "cell2"
        failure = out[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "crashed"
        assert "exited" in failure.message

    def test_transient_crash_recovers_via_retry(self, tmp_path):
        marker = str(tmp_path / "first-attempt")
        engine = ExperimentEngine(workers=2, retries=1)
        out = engine.run_cells(
            _cells({}, {"action": "die-once", "marker": marker}),
            task_fn=_task,
        )
        assert out == ["cell0", "cell1"]
        assert engine.stats.retries == 1
        assert engine.stats.failures == 0

    def test_crash_exhausts_bounded_retries(self):
        engine = ExperimentEngine(workers=2, retries=2)
        out = engine.run_cells(_cells({"action": "die"}, {}), task_fn=_task)
        failure = out[0]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "crashed"
        assert failure.attempts == 3  # initial try + two retries
        assert engine.stats.retries == 2

    def test_completed_chunkmates_survive_a_late_crash(self):
        # Worker finishes two cells, then dies on the third: the two
        # finished results must be salvaged from the queue.
        engine = ExperimentEngine(workers=2, retries=0, chunksize=3)
        out = engine.run_cells(
            _cells({}, {}, {"action": "die"}), task_fn=_task
        )
        assert out[0] == "cell0" and out[1] == "cell1"
        assert isinstance(out[2], CellFailure)
