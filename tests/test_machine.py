"""Unit tests for the machine layer (CPU, node, system)."""

import pytest

from repro.config import (
    SLEEP1_HALT,
    SLEEP2,
    SLEEP3,
    EnergyConfig,
    MachineConfig,
)
from repro.energy.accounting import Category
from repro.errors import ConfigError, SimulationError
from repro.machine import CpuPower, System
from repro.sim import AnyOf


def small_system(n_nodes=4, detailed=True):
    return System(MachineConfig(n_nodes=n_nodes, detailed_memory=detailed))


def run_on_node(system, generator_fn, node_id=0):
    process = system.spawn_thread(node_id, generator_fn(system.nodes[node_id]))
    system.run()
    return process.value


class TestCpuPower:
    def test_calibration_is_consistent(self):
        power = CpuPower.calibrate()
        assert 0 < power.spin_watts < power.compute_watts
        assert power.compute_watts < power.tdp_max_watts

    def test_spin_factor_applied(self):
        energy = EnergyConfig(spin_power_factor=0.85)
        power = CpuPower.calibrate(energy_config=energy)
        assert power.spin_watts == pytest.approx(0.85 * power.compute_watts)

    def test_sleep_watts_ordering(self):
        power = CpuPower.calibrate()
        assert (
            power.sleep_watts(SLEEP1_HALT)
            > power.sleep_watts(SLEEP2)
            > power.sleep_watts(SLEEP3)
        )


class TestCpuCompute:
    def test_compute_advances_time_and_charges_energy(self):
        system = small_system()

        def program(node):
            yield from node.cpu.compute(10_000)

        run_on_node(system, program)
        cpu = system.nodes[0].cpu
        assert system.execution_time_ns == 10_000
        assert cpu.account.time_ns(Category.COMPUTE) == 10_000
        assert cpu.account.energy_joules(Category.COMPUTE) == pytest.approx(
            system.power.compute_watts * 10_000e-9
        )

    def test_negative_compute_rejected(self):
        system = small_system()

        def program(node):
            yield from node.cpu.compute(-5)

        with pytest.raises(SimulationError):
            run_on_node(system, program)

    def test_refill_debt_paid_on_next_compute(self):
        system = small_system()
        cpu = system.nodes[0].cpu
        cpu.add_refill_debt(10)
        assert cpu.refill_debt_ns == 10 * system.config.refill_per_line_ns

        def program(node):
            yield from node.cpu.compute(1_000)

        run_on_node(system, program)
        assert cpu.refill_debt_ns == 0
        assert (
            cpu.account.time_ns(Category.COMPUTE)
            == 1_000 + 10 * system.config.refill_per_line_ns
        )

    def test_negative_refill_debt_rejected(self):
        system = small_system()
        with pytest.raises(SimulationError):
            system.nodes[0].cpu.add_refill_debt(-1)


class TestCpuSpin:
    def test_spin_until_charges_spin_power(self):
        system = small_system()
        release = system.sim.event()
        system.sim.schedule(5_000, release.succeed)

        def program(node):
            spun = yield from node.cpu.spin_until(release)
            return spun

        value = run_on_node(system, program)
        assert value == 5_000
        cpu = system.nodes[0].cpu
        assert cpu.account.time_ns(Category.SPIN) == 5_000
        assert cpu.account.energy_joules(Category.SPIN) == pytest.approx(
            system.power.spin_watts * 5_000e-9
        )

    def test_spin_for_fixed_duration(self):
        system = small_system()

        def program(node):
            yield from node.cpu.spin_for(123)

        run_on_node(system, program)
        assert system.nodes[0].cpu.account.time_ns(Category.SPIN) == 123


class TestCpuSleep:
    def test_halt_sleep_residency_and_transitions(self):
        system = small_system()
        wake = system.sim.event()
        system.sim.schedule(100_000, wake.succeed)

        def program(node):
            outcome = yield from node.cpu.sleep(SLEEP1_HALT, wake)
            return outcome

        outcome = run_on_node(system, program)
        cpu = system.nodes[0].cpu
        # 10 us in-transition, residency until 100 us, 10 us out.
        assert outcome.resident_ns == 90_000
        assert cpu.account.time_ns(Category.TRANSITION) == 20_000
        assert cpu.account.time_ns(Category.SLEEP) == 90_000
        assert system.execution_time_ns == 110_000
        assert outcome.total_ns == 110_000

    def test_sleep_energy_below_spinning(self):
        system = small_system()
        wake = system.sim.event()
        system.sim.schedule(1_000_000, wake.succeed)

        def program(node):
            yield from node.cpu.sleep(SLEEP1_HALT, wake)

        run_on_node(system, program)
        cpu = system.nodes[0].cpu
        slept_joules = cpu.account.energy_joules()
        spin_joules = system.power.spin_watts * 1_010_000e-9
        assert slept_joules < spin_joules

    def test_wake_already_triggered_gives_zero_residency(self):
        system = small_system()
        wake = system.sim.event().succeed()

        def program(node):
            outcome = yield from node.cpu.sleep(SLEEP1_HALT, wake)
            return outcome

        outcome = run_on_node(system, program)
        assert outcome.resident_ns == 0
        assert outcome.total_ns == SLEEP1_HALT.round_trip_ns

    def test_non_snooping_state_requires_controller(self):
        system = small_system()
        wake = system.sim.event().succeed()

        def program(node):
            yield from node.cpu.sleep(SLEEP2, wake)

        with pytest.raises(SimulationError):
            run_on_node(system, program)

    def test_deep_sleep_flushes_and_accrues_refill_debt(self):
        system = small_system()
        wake = system.sim.event()
        system.sim.schedule(500_000, wake.succeed)

        def program(node):
            yield from node.store(0x1000, 1)  # dirty a line
            outcome = yield from node.cpu.sleep(
                SLEEP3, wake, controller=node.controller, flush_lines=5
            )
            return outcome

        outcome = run_on_node(system, program)
        cpu = system.nodes[0].cpu
        assert outcome.flushed_lines == 6
        assert outcome.flush_ns > 0
        assert cpu.refill_debt_ns == 6 * system.config.refill_per_line_ns
        # Snooping restored after wake.
        assert system.nodes[0].controller.snooping

    def test_deep_sleep_marks_controller_non_snooping(self):
        system = small_system()
        wake = system.sim.event()
        snoop_during_sleep = []

        def observe():
            yield system.sim.timeout(100_000)
            snoop_during_sleep.append(system.nodes[0].controller.snooping)

        def program(node):
            yield from node.cpu.sleep(
                SLEEP2, wake, controller=node.controller
            )

        system.sim.spawn(observe())
        system.spawn_thread(0, program(system.nodes[0]))
        system.sim.schedule(400_000, wake.succeed)
        system.run()
        assert snoop_during_sleep == [False]

    def test_hybrid_race_timer_vs_external(self):
        system = small_system()
        flag_addr = system.alloc_shared()
        external = system.sim.event()
        wake_events = {}

        def writer(node):
            yield from node.cpu.compute(50_000)
            yield from node.store(flag_addr, 1)

        def sleeper(node):
            # The controller "reads in the flag" when armed (Sec. 3.3.1),
            # installing the shared copy whose INV is the wake signal.
            yield from node.load(flag_addr)
            node.controller.arm_flag_monitor(
                flag_addr, lambda line: external.succeed()
            )
            timer_event = system.sim.timeout(1_000_000)
            wake = AnyOf(system.sim, [timer_event, external])
            wake_events["race"] = wake
            outcome = yield from node.cpu.sleep(SLEEP1_HALT, wake)
            return outcome

        process = system.spawn_thread(0, sleeper(system.nodes[0]))
        system.spawn_thread(1, writer(system.nodes[1]))
        system.run()
        # External invalidation (at ~50 us) wins over the 1 ms timer.
        assert wake_events["race"].value is external
        assert process.value.resident_ns < 100_000


class TestNodeAddressing:
    def test_private_addr_homed_locally(self):
        system = small_system()
        for node in system.nodes:
            addr = node.private_addr(128)
            assert system.memsys.home_of(addr) == node.node_id

    def test_private_addr_spans_pages(self):
        system = small_system()
        node = system.nodes[1]
        big_offset = 3 * system.config.page_bytes + 64
        addr = node.private_addr(big_offset)
        assert system.memsys.home_of(addr) == 1

    def test_private_addrs_distinct_across_nodes(self):
        system = small_system()
        addrs = {node.private_addr(0) for node in system.nodes}
        assert len(addrs) == system.n_nodes


class TestSystem:
    def test_alloc_shared_line_spacing(self):
        system = small_system()
        addrs = system.alloc_shared(count=3)
        assert addrs[1] - addrs[0] == system.config.line_bytes
        lines = {system.memsys.line_of(a) for a in addrs}
        assert len(lines) == 3

    def test_alloc_shared_single(self):
        system = small_system()
        first = system.alloc_shared()
        second = system.alloc_shared()
        assert isinstance(first, int)
        assert second > first

    def test_run_threads_runs_on_each_node(self):
        system = small_system()
        visited = []

        def program(node):
            yield from node.cpu.compute(1_000 * (node.node_id + 1))
            visited.append(node.node_id)

        system.run_threads(program)
        assert sorted(visited) == [0, 1, 2, 3]
        assert system.execution_time_ns == 4_000

    def test_run_threads_subset(self):
        system = small_system()

        def program(node):
            yield from node.cpu.compute(100)

        system.run_threads(program, n_threads=2)
        assert system.nodes[2].cpu.account.time_ns() == 0

    def test_too_many_threads_rejected(self):
        system = small_system()
        with pytest.raises(ConfigError):
            system.run_threads(lambda node: iter(()), n_threads=9)

    def test_thread_failure_surfaces(self):
        system = small_system()

        def bad(node):
            yield from node.cpu.compute(10)
            raise RuntimeError("thread crashed")

        system.spawn_thread(0, bad(system.nodes[0]))
        with pytest.raises(SimulationError):
            system.run()

    def test_total_account_merges_cpus(self):
        system = small_system()

        def program(node):
            yield from node.cpu.compute(1_000)

        system.run_threads(program)
        total = system.total_account()
        assert total.time_ns(Category.COMPUTE) == 4_000

    def test_mem_op_charged_as_compute(self):
        system = small_system()

        def program(node):
            yield from node.load(0x9999)

        run_on_node(system, program)
        cpu = system.nodes[0].cpu
        assert cpu.account.time_ns(Category.COMPUTE) > 0
        assert cpu.account.time_ns(Category.SPIN) == 0
