"""Unit tests for configuration objects (repro.config)."""

import pytest

from repro.config import (
    DEFAULT_SLEEP_STATES,
    SLEEP1_HALT,
    SLEEP2,
    SLEEP3,
    CacheConfig,
    MachineConfig,
    SleepStateConfig,
    ThriftyConfig,
)
from repro.errors import ConfigError


class TestSleepStates:
    def test_table3_power_savings(self):
        assert SLEEP1_HALT.power_savings == pytest.approx(0.702)
        assert SLEEP2.power_savings == pytest.approx(0.792)
        assert SLEEP3.power_savings == pytest.approx(0.978)

    def test_table3_transition_latencies_us(self):
        assert SLEEP1_HALT.transition_latency_ns == 10_000
        assert SLEEP2.transition_latency_ns == 15_000
        assert SLEEP3.transition_latency_ns == 35_000

    def test_table3_snoop_column(self):
        assert SLEEP1_HALT.snoops
        assert not SLEEP2.snoops
        assert not SLEEP3.snoops

    def test_table3_voltage_column(self):
        assert not SLEEP1_HALT.voltage_reduction
        assert not SLEEP2.voltage_reduction
        assert SLEEP3.voltage_reduction

    def test_residency_power_scales_with_tdp(self):
        assert SLEEP1_HALT.residency_power(100.0) == pytest.approx(29.8)
        assert SLEEP3.residency_power(100.0) == pytest.approx(2.2)

    def test_round_trip_is_double_one_way(self):
        assert SLEEP2.round_trip_ns == 30_000

    def test_invalid_savings_rejected(self):
        with pytest.raises(ConfigError):
            SleepStateConfig("bad", 1.5, 10, True, False)
        with pytest.raises(ConfigError):
            SleepStateConfig("bad", 0.0, 10, True, False)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            SleepStateConfig("bad", 0.5, -1, True, False)

    def test_deeper_states_save_more_but_cost_more(self):
        savings = [s.power_savings for s in DEFAULT_SLEEP_STATES]
        latencies = [s.transition_latency_ns for s in DEFAULT_SLEEP_STATES]
        assert savings == sorted(savings)
        assert latencies == sorted(latencies)


class TestMachineConfig:
    def test_table1_defaults(self):
        config = MachineConfig()
        assert config.n_nodes == 64
        assert config.cpu_freq_mhz == 1_000
        assert config.l1.size_bytes == 16 * 1024
        assert config.l1.ways == 2
        assert config.l1.round_trip_ns == 2
        assert config.l2.size_bytes == 64 * 1024
        assert config.l2.ways == 8
        assert config.l2.round_trip_ns == 12
        assert config.memory_row_miss_ns == 60
        assert config.network.pin_to_pin_ns == 16
        assert config.network.marshal_ns == 16
        assert config.line_bytes == 64

    def test_cache_geometry_derived(self):
        config = MachineConfig()
        assert config.l1.n_lines == 256
        assert config.l1.n_sets == 128
        assert config.l2.n_lines == 1024
        assert config.l2.n_sets == 128

    def test_non_power_of_two_nodes_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_nodes=48)

    def test_scaled_copy(self):
        small = MachineConfig().scaled(8)
        assert small.n_nodes == 8
        assert small.l1 == MachineConfig().l1

    def test_mismatched_line_sizes_rejected(self):
        bad_l2 = CacheConfig(
            size_bytes=64 * 1024, line_bytes=32, ways=8,
            round_trip_ns=12, freq_mhz=500,
        )
        with pytest.raises(ConfigError):
            MachineConfig(l2=bad_l2)

    def test_indivisible_cache_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(
                size_bytes=1000, line_bytes=64, ways=3,
                round_trip_ns=1, freq_mhz=1000,
            )


class TestThriftyConfig:
    def test_defaults_match_paper(self):
        config = ThriftyConfig()
        assert config.overprediction_threshold == pytest.approx(0.10)
        assert config.use_internal_wakeup and config.use_external_wakeup
        assert config.conditional_sleep
        assert len(config.sleep_states) == 3

    def test_deepest_state(self):
        assert ThriftyConfig().deepest_state is SLEEP3

    def test_requires_some_wakeup_mechanism(self):
        with pytest.raises(ConfigError):
            ThriftyConfig(use_internal_wakeup=False, use_external_wakeup=False)

    def test_requires_states(self):
        with pytest.raises(ConfigError):
            ThriftyConfig(sleep_states=())

    def test_states_must_be_latency_ordered(self):
        with pytest.raises(ConfigError):
            ThriftyConfig(sleep_states=(SLEEP3, SLEEP1_HALT))

    def test_halt_only_configuration(self):
        config = ThriftyConfig(sleep_states=(SLEEP1_HALT,))
        assert config.deepest_state is SLEEP1_HALT
